"""Distribution schedules: moves, timesteps, validity, and metrics.

Section 3.1 defines a *move* as an assignment of a token to an arc and a
*timestep* as a set of simultaneous moves.  A schedule is valid when every
timestep respects the arc capacities and the possession rule (a vertex may
only send tokens it held at the *start* of the timestep), and successful
when every vertex ends up holding everything it wants.

This module is the single authority on those rules.  The polynomial-time
verifier used in the NP-completeness argument (Theorem 3) is exactly
:meth:`Schedule.validate` followed by :meth:`Schedule.is_successful`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.core.problem import Problem
from repro.core.tokenset import EMPTY_TOKENSET, TokenSet

__all__ = ["Move", "Timestep", "Schedule", "ScheduleError"]


class ScheduleError(ValueError):
    """Raised when a schedule violates the model constraints."""


@dataclass(frozen=True, order=True)
class Move:
    """One token crossing one arc during one timestep."""

    src: int
    dst: int
    token: int

    def __repr__(self) -> str:
        return f"Move({self.src}->{self.dst}, t{self.token})"


class Timestep:
    """The set of simultaneous moves of one timestep.

    Stored as a mapping from arc ``(src, dst)`` to the :class:`TokenSet`
    sent across it — the paper's ``s_i`` function.
    """

    __slots__ = ("sends",)

    def __init__(self, sends: Mapping[Tuple[int, int], TokenSet] | None = None) -> None:
        self.sends: Dict[Tuple[int, int], TokenSet] = {}
        if sends:
            for arc, tokens in sends.items():
                if tokens:
                    self.sends[arc] = tokens

    @classmethod
    def from_validated(
        cls, sends: Dict[Tuple[int, int], TokenSet]
    ) -> "Timestep":
        """Adopt ``sends`` without copying or re-filtering.

        For engine hot paths that just built a fresh dict of validated,
        non-empty sends; the caller must not mutate ``sends`` afterwards.
        """
        step = cls()
        step.sends = sends
        return step

    @classmethod
    def from_moves(cls, moves: Iterable[Move]) -> "Timestep":
        step = cls()
        for move in moves:
            arc = (move.src, move.dst)
            step.sends[arc] = step.sends.get(arc, EMPTY_TOKENSET).add(move.token)
        return step

    def moves(self) -> List[Move]:
        """All moves of this timestep, in deterministic order."""
        out: List[Move] = []
        for (src, dst), tokens in sorted(self.sends.items()):
            for token in tokens:
                out.append(Move(src, dst, token))
        return out

    def num_moves(self) -> int:
        return sum(len(tokens) for tokens in self.sends.values())

    def sent(self, src: int, dst: int) -> TokenSet:
        return self.sends.get((src, dst), EMPTY_TOKENSET)

    def __bool__(self) -> bool:
        return any(self.sends.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timestep):
            return NotImplemented
        return self.sends == other.sends

    def __repr__(self) -> str:
        return f"Timestep({self.num_moves()} moves over {len(self.sends)} arcs)"


class Schedule:
    """A sequence of timesteps for one :class:`Problem`.

    The schedule does not store possession state; :meth:`replay`
    reconstructs the paper's ``p_i`` functions from the initial haves,
    and :meth:`validate` checks the capacity and possession constraints
    along the way.
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Sequence[Timestep] = ()) -> None:
        self.steps: List[Timestep] = list(steps)

    @classmethod
    def from_move_lists(cls, move_lists: Sequence[Iterable[Move]]) -> "Schedule":
        return cls([Timestep.from_moves(moves) for moves in move_lists])

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> int:
        """Number of timesteps — the FOCD objective."""
        return len(self.steps)

    @property
    def bandwidth(self) -> int:
        """Total number of moves — the EOCD objective."""
        return sum(step.num_moves() for step in self.steps)

    def moves(self) -> List[Tuple[int, Move]]:
        """All ``(timestep_index, move)`` pairs in schedule order."""
        out: List[Tuple[int, Move]] = []
        for i, step in enumerate(self.steps):
            for move in step.moves():
                out.append((i, move))
        return out

    # ------------------------------------------------------------------
    # Replay and validation
    # ------------------------------------------------------------------
    def replay(self, problem: Problem) -> List[List[TokenSet]]:
        """Reconstruct possession history ``p_0 .. p_t`` without validating.

        Returns a list of ``t + 1`` possession vectors.  Tokens sent
        without being possessed are still delivered — use
        :meth:`validate` to check legality.
        """
        possession = [list(problem.have)]
        for step in self.steps:
            current = list(possession[-1])
            for (src, dst), tokens in step.sends.items():
                current[dst] = current[dst] | tokens
            possession.append(current)
        return possession

    def validate(self, problem: Problem) -> List[List[TokenSet]]:
        """Check every model constraint; return the possession history.

        Raises :class:`ScheduleError` on the first violation: an unknown
        arc, a capacity overflow, a send of an unpossessed token, or a
        token id outside the universe.  This is the polynomial-time
        verifier from the proof of Theorem 3.
        """
        universe = problem.all_tokens()
        possession: List[List[TokenSet]] = [list(problem.have)]
        for i, step in enumerate(self.steps):
            before = possession[-1]
            current = list(before)
            for (src, dst), tokens in step.sends.items():
                if not problem.has_arc(src, dst):
                    raise ScheduleError(
                        f"timestep {i}: no arc ({src}, {dst}) in the graph"
                    )
                if not tokens <= universe:
                    raise ScheduleError(
                        f"timestep {i}: arc ({src}, {dst}) carries tokens outside "
                        f"0..{problem.num_tokens - 1}"
                    )
                if len(tokens) > problem.capacity(src, dst):
                    raise ScheduleError(
                        f"timestep {i}: arc ({src}, {dst}) carries {len(tokens)} "
                        f"tokens, capacity {problem.capacity(src, dst)}"
                    )
                if not tokens <= before[src]:
                    lacking = tokens - before[src]
                    raise ScheduleError(
                        f"timestep {i}: vertex {src} sends tokens "
                        f"{sorted(lacking)} it does not possess"
                    )
                current[dst] = current[dst] | tokens
            possession.append(current)
        return possession

    def is_valid(self, problem: Problem) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(problem)
        except ScheduleError:
            return False
        return True

    def is_successful(self, problem: Problem) -> bool:
        """Whether the final possession covers every want (after validating)."""
        final = self.validate(problem)[-1]
        return all(
            problem.want[v] <= final[v] for v in range(problem.num_vertices)
        )

    def final_possession(self, problem: Problem) -> List[TokenSet]:
        return self.replay(problem)[-1]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "steps": [
                {f"{src},{dst}": sorted(tokens) for (src, dst), tokens in step.sends.items()}
                for step in self.steps
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Schedule":
        steps: List[Timestep] = []
        for step_data in data["steps"]:
            sends: Dict[Tuple[int, int], TokenSet] = {}
            for arc_key, tokens in step_data.items():
                src_s, dst_s = arc_key.split(",")
                sends[(int(src_s), int(dst_s))] = TokenSet.from_iterable(tokens)
            steps.append(Timestep(sends))
        return cls(steps)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Timestep]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> Timestep:
        return self.steps[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.steps == other.steps

    def __repr__(self) -> str:
        return f"<Schedule makespan={self.makespan} bandwidth={self.bandwidth}>"
