"""Metrics over problems and schedules.

The paper evaluates heuristics on two axes — the number of timesteps
("moves" in the figures' x-label sense is the makespan; the paper's plots
call it *moves*) and the total bandwidth (token-arc transfers).  This
module computes those and the finer-grained views used in EXPERIMENTS.md:
per-vertex completion times and per-timestep progress curves.

Terminology note: the paper's figures label the makespan axis "moves"
(as in "number of rounds of simultaneous moves"), while "bandwidth" counts
individual token transfers.  We expose both under unambiguous names and
keep ``makespan``/``bandwidth`` as the canonical pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.problem import Problem
from repro.core.schedule import Schedule

__all__ = ["ScheduleMetrics", "evaluate_schedule", "completion_times", "progress_curve"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary metrics for one schedule against one problem."""

    makespan: int
    bandwidth: int
    successful: bool
    mean_completion: float
    max_completion: int
    unsatisfied_vertices: int

    def as_row(self) -> Dict[str, Any]:
        """Flat dict for tabular reports."""
        return {
            "makespan": self.makespan,
            "bandwidth": self.bandwidth,
            "successful": self.successful,
            "mean_completion": round(self.mean_completion, 3),
            "max_completion": self.max_completion,
            "unsatisfied": self.unsatisfied_vertices,
        }


def completion_times(problem: Problem, schedule: Schedule) -> List[Optional[int]]:
    """Timestep at which each vertex first holds everything it wants.

    Vertices with empty (or initially satisfied) wants complete at 0;
    vertices never satisfied get ``None``.
    """
    history = schedule.replay(problem)
    times: List[Optional[int]] = []
    for v in range(problem.num_vertices):
        found: Optional[int] = None
        for i, possession in enumerate(history):
            if problem.want[v] <= possession[v]:
                found = i
                break
        times.append(found)
    return times


def progress_curve(problem: Problem, schedule: Schedule) -> List[int]:
    """Outstanding demand (wanted-but-missing token count) after each step.

    Entry 0 is the initial demand; the curve is non-increasing for any
    valid schedule and reaches 0 exactly when the schedule succeeds.
    """
    history = schedule.replay(problem)
    curve: List[int] = []
    for possession in history:
        curve.append(
            sum(
                len(problem.want[v] - possession[v])
                for v in range(problem.num_vertices)
            )
        )
    return curve


def evaluate_schedule(problem: Problem, schedule: Schedule) -> ScheduleMetrics:
    """Validate and summarize a schedule in one pass."""
    history = schedule.validate(problem)
    final = history[-1]
    unsatisfied = sum(
        1 for v in range(problem.num_vertices) if not problem.want[v] <= final[v]
    )
    times = completion_times(problem, schedule)
    finite = [t for t in times if t is not None]
    mean_completion = sum(finite) / len(finite) if finite else 0.0
    max_completion = max(finite) if finite else 0
    return ScheduleMetrics(
        makespan=schedule.makespan,
        bandwidth=schedule.bandwidth,
        successful=unsatisfied == 0,
        mean_completion=mean_completion,
        max_completion=max_completion,
        unsatisfied_vertices=unsatisfied,
    )
