"""Immutable sets of content tokens, backed by integer bitmasks.

The paper models all content as unit-sized *tokens*; files are simply sets
of tokens.  Every hot path in the simulator and the exact solvers performs
set algebra on token sets (possession updates, "useful token" computations,
rarity counts), so the representation matters: a :class:`TokenSet` stores
its members as a single Python integer bitmask, where bit ``t`` is set iff
token ``t`` is a member.  Union, intersection, and difference are then
single machine-level big-int operations, and cardinality is a popcount.

Tokens are identified by small non-negative integers ``0..m-1`` where ``m``
is the number of tokens in the problem instance.  A :class:`TokenSet` does
not carry ``m`` itself; it is a bare set of naturals, and the enclosing
:class:`repro.core.problem.Problem` defines the universe.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["TokenSet", "EMPTY_TOKENSET"]


class TokenSet:
    """An immutable set of token identifiers backed by an int bitmask.

    Instances are hashable and support the standard set operators
    (``|``, ``&``, ``-``, ``^``), comparisons (``<=`` for subset), length,
    iteration (in increasing token order), and membership tests.

    >>> a = TokenSet.of(0, 2, 5)
    >>> b = TokenSet.of(2, 3)
    >>> sorted(a | b)
    [0, 2, 3, 5]
    >>> len(a - b)
    2
    >>> 2 in a
    True
    """

    __slots__ = ("mask",)

    def __init__(self, mask: int = 0) -> None:
        if mask < 0:
            raise ValueError(f"token bitmask must be non-negative, got {mask}")
        self.mask = mask

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *tokens: int) -> "TokenSet":
        """Build a set from explicitly listed token ids."""
        return cls.from_iterable(tokens)

    @classmethod
    def from_iterable(cls, tokens: Iterable[int]) -> "TokenSet":
        """Build a set from any iterable of token ids."""
        mask = 0
        for t in tokens:
            if t < 0:
                raise ValueError(f"token ids must be non-negative, got {t}")
            mask |= 1 << t
        return cls(mask)

    @classmethod
    def full(cls, num_tokens: int) -> "TokenSet":
        """The complete universe ``{0, ..., num_tokens - 1}``."""
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be non-negative, got {num_tokens}")
        return cls((1 << num_tokens) - 1)

    @classmethod
    def single(cls, token: int) -> "TokenSet":
        """The singleton set ``{token}``."""
        if token < 0:
            raise ValueError(f"token ids must be non-negative, got {token}")
        return cls(1 << token)

    @classmethod
    def token_range(cls, start: int, stop: int) -> "TokenSet":
        """The contiguous set ``{start, ..., stop - 1}``."""
        if not 0 <= start <= stop:
            raise ValueError(f"invalid token range [{start}, {stop})")
        return cls(((1 << (stop - start)) - 1) << start)

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def __or__(self, other: "TokenSet") -> "TokenSet":
        return TokenSet(self.mask | other.mask)

    def __and__(self, other: "TokenSet") -> "TokenSet":
        return TokenSet(self.mask & other.mask)

    def __sub__(self, other: "TokenSet") -> "TokenSet":
        return TokenSet(self.mask & ~other.mask)

    def __xor__(self, other: "TokenSet") -> "TokenSet":
        return TokenSet(self.mask ^ other.mask)

    def union(self, *others: "TokenSet") -> "TokenSet":
        mask = self.mask
        for o in others:
            mask |= o.mask
        return TokenSet(mask)

    def intersection(self, *others: "TokenSet") -> "TokenSet":
        mask = self.mask
        for o in others:
            mask &= o.mask
        return TokenSet(mask)

    def difference(self, *others: "TokenSet") -> "TokenSet":
        mask = self.mask
        for o in others:
            mask &= ~o.mask
        return TokenSet(mask)

    def add(self, token: int) -> "TokenSet":
        """Return a new set with ``token`` included."""
        return TokenSet(self.mask | (1 << token))

    def remove(self, token: int) -> "TokenSet":
        """Return a new set with ``token`` excluded (no error if absent)."""
        return TokenSet(self.mask & ~(1 << token))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def __contains__(self, token: int) -> bool:
        return token >= 0 and (self.mask >> token) & 1 == 1

    def __le__(self, other: "TokenSet") -> bool:
        """Subset-or-equal test."""
        return self.mask & ~other.mask == 0

    def __lt__(self, other: "TokenSet") -> bool:
        return self.mask != other.mask and self <= other

    def __ge__(self, other: "TokenSet") -> bool:
        return other <= self

    def __gt__(self, other: "TokenSet") -> bool:
        return other < self

    def issubset(self, other: "TokenSet") -> bool:
        return self <= other

    def issuperset(self, other: "TokenSet") -> bool:
        return other <= self

    def isdisjoint(self, other: "TokenSet") -> bool:
        return self.mask & other.mask == 0

    def __bool__(self) -> bool:
        return self.mask != 0

    # ------------------------------------------------------------------
    # Size and iteration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.mask.bit_count()

    def __iter__(self) -> Iterator[int]:
        mask = self.mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def min(self) -> int:
        """Smallest member; raises :class:`ValueError` on the empty set."""
        if not self.mask:
            raise ValueError("min() of an empty TokenSet")
        low = self.mask & -self.mask
        return low.bit_length() - 1

    def max(self) -> int:
        """Largest member; raises :class:`ValueError` on the empty set."""
        if not self.mask:
            raise ValueError("max() of an empty TokenSet")
        return self.mask.bit_length() - 1

    def take(self, count: int) -> "TokenSet":
        """The ``count`` smallest members (all members if fewer).

        Runs in ``O(log w)`` popcounts of ``w``-bit prefixes instead of
        ``count`` sequential low-bit extractions: bisect on the prefix
        length for the shortest truncation of the mask that holds exactly
        ``count`` set bits.  For a mask of ``w`` machine words this is
        ``O(w log w)`` word operations total versus ``O(count * w)`` for
        the extraction loop — the win grows with both the universe size
        and ``count`` (see ``benchmarks/test_tokenset_take.py``).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        mask = self.mask
        if count == 0 or not mask:
            return EMPTY_TOKENSET
        if mask.bit_count() <= count:
            return self
        # Smallest prefix length whose truncated popcount reaches `count`;
        # it always ends one past a set bit, so the popcount is exact.
        lo, hi = 0, mask.bit_length()
        while lo < hi:
            mid = (lo + hi) // 2
            if (mask & ((1 << mid) - 1)).bit_count() < count:
                lo = mid + 1
            else:
                hi = mid
        return TokenSet(mask & ((1 << lo) - 1))

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, TokenSet):
            return self.mask == other.mask
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.mask)

    def __repr__(self) -> str:
        return f"TokenSet.of({', '.join(map(str, self))})"


EMPTY_TOKENSET = TokenSet(0)
"""The canonical empty token set."""
