"""Lower-bound approximations for remaining bandwidth and timesteps.

Section 5.1 closes with two cheap lower bounds the paper uses to judge
heuristic quality on graphs too large for the exact solvers:

* **Remaining bandwidth** — "counting every token that is wanted but not
  known at each vertex": each such (vertex, token) pair costs at least one
  move, so the sum lower-bounds the bandwidth any schedule still needs.

* **Remaining timesteps** — ``M_i(v) = i + |T^{c_i(v)}| / indegree``,
  where ``T^{c_i(v)}`` is the set of tokens (still needed by ``v``) held
  only outside the radius-``i`` in-closure of ``v``, maximized over ``i``
  and over vertices.  A token held only at distance ``> i`` cannot arrive
  before timestep ``i + 1``, and from then on ``v`` receives at most its
  total incoming capacity per step, so completion takes at least
  ``i + ceil(outside_i / in_capacity)`` more steps.

  The paper divides by *indegree*; we divide by the total incoming
  *capacity* instead, because with capacities above one the indegree
  version can exceed the true optimum and stop being a lower bound.
  With unit capacities the two coincide.  This substitution is recorded
  in DESIGN.md.

Both functions accept an optional mid-run possession vector so the
simulator can report bound trajectories, and evaluate the initial state
when it is omitted.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Sequence

from repro.core.problem import Problem
from repro.core.tokenset import TokenSet

__all__ = [
    "remaining_bandwidth",
    "remaining_timesteps",
    "lookahead_timestep_bound",
    "diameter_knowledge_bound",
    "InfeasibleBoundError",
]


class InfeasibleBoundError(ValueError):
    """Raised when some wanted token has no holder anywhere — no schedule
    can succeed, so no finite bound exists."""


def _possession_or_initial(
    problem: Problem, possession: Optional[Sequence[TokenSet]]
) -> Sequence[TokenSet]:
    if possession is None:
        return problem.have
    if len(possession) != problem.num_vertices:
        raise ValueError(
            f"possession has {len(possession)} entries for "
            f"{problem.num_vertices} vertices"
        )
    return possession


def remaining_bandwidth(
    problem: Problem, possession: Optional[Sequence[TokenSet]] = None
) -> int:
    """Wanted-but-missing token count — a bandwidth lower bound.

    "Logically this represents the bandwidth that would be consumed if
    the schedule could be completed in a single timestep."
    """
    possession = _possession_or_initial(problem, possession)
    return sum(
        len(problem.want[v] - possession[v]) for v in range(problem.num_vertices)
    )


def _reverse_distances_to(problem: Problem, dst: int) -> List[int]:
    """Hop distances from every vertex *to* ``dst`` (−1 if it cannot reach)."""
    dist = [-1] * problem.num_vertices
    dist[dst] = 0
    queue = deque([dst])
    while queue:
        v = queue.popleft()
        for arc in problem.in_arcs(v):
            if dist[arc.src] == -1:
                dist[arc.src] = dist[v] + 1
                queue.append(arc.src)
    return dist


def _vertex_timestep_bound(
    problem: Problem, v: int, needed: TokenSet, possession: Sequence[TokenSet]
) -> int:
    """``max_i M_i(v)`` for a single vertex ``v`` with ``needed`` tokens."""
    dist_to_v = _reverse_distances_to(problem, v)
    token_dist: List[int] = []
    for token in needed:
        best = math.inf
        for u in range(problem.num_vertices):
            if token in possession[u] and dist_to_v[u] != -1 and dist_to_v[u] < best:
                best = dist_to_v[u]
        if best is math.inf:
            raise InfeasibleBoundError(
                f"vertex {v} needs token {token}, which no vertex that can "
                f"reach it possesses"
            )
        token_dist.append(int(best))
    if not token_dist:
        return 0
    in_cap = problem.in_capacity(v)
    if in_cap == 0:
        raise InfeasibleBoundError(
            f"vertex {v} still needs tokens but has no incoming arcs"
        )
    token_dist.sort()
    max_dist = token_dist[-1]
    best_bound = 0
    # outside_i = number of needed tokens whose nearest holder is at
    # distance > i.  Sweep i from 0 to max_dist - 1; at i >= max_dist the
    # outside set is empty and M_i degenerates to i, covered by i = max_dist - 1.
    total = len(token_dist)
    consumed = 0  # tokens with distance <= i
    for i in range(max_dist):
        while consumed < total and token_dist[consumed] <= i:
            consumed += 1
        outside = total - consumed
        bound = i + math.ceil(outside / in_cap)
        if bound > best_bound:
            best_bound = bound
    # i = 0 with outside = all needed tokens at distance >= 1 is included
    # above; also ensure the plain farthest-token bound survives rounding.
    if max_dist > best_bound:
        best_bound = max_dist
    return best_bound


def remaining_timesteps(
    problem: Problem, possession: Optional[Sequence[TokenSet]] = None
) -> int:
    """The paper's radius-closure makespan lower bound, maximized over
    vertices and radii.

    Returns 0 when every want is already satisfied.  Raises
    :class:`InfeasibleBoundError` when some want can never be satisfied.
    """
    possession = _possession_or_initial(problem, possession)
    best = 0
    for v in range(problem.num_vertices):
        needed = problem.want[v] - possession[v]
        if not needed:
            continue
        bound = _vertex_timestep_bound(problem, v, needed, possession)
        if bound > best:
            best = bound
    return best


def lookahead_timestep_bound(
    problem: Problem, possession: Optional[Sequence[TokenSet]] = None
) -> int:
    """The paper's one-timestep-lookahead special case.

    For each vertex, count exactly how many of its needed tokens are held
    by in-neighbors right now; everything receivable this step is bounded
    by both that count and the incoming capacity, and the remainder needs
    at least ``ceil(rest / in_capacity)`` further steps.
    """
    possession = _possession_or_initial(problem, possession)
    best = 0
    for v in range(problem.num_vertices):
        needed = problem.want[v] - possession[v]
        if not needed:
            continue
        in_cap = problem.in_capacity(v)
        if in_cap == 0:
            raise InfeasibleBoundError(
                f"vertex {v} still needs tokens but has no incoming arcs"
            )
        one_hop = TokenSet(0)
        for arc in problem.in_arcs(v):
            one_hop = one_hop | (possession[arc.src] & needed)
        receivable = min(len(one_hop), in_cap)
        rest = len(needed) - receivable
        bound = 1 + math.ceil(rest / in_cap) if rest > 0 else 1
        if bound > best:
            best = bound
    return best


def diameter_knowledge_bound(problem: Problem) -> int:
    """Upper bound on the *additive* cost of locality (Section 4.2).

    Flooding full state for ``diameter`` steps lets every vertex compute
    the same optimal global schedule deterministically, so an online
    algorithm exists whose makespan is at most ``diameter + optimum``.
    This returns that diameter term.
    """
    return problem.diameter()
