"""Schedule pruning — the bandwidth-reducing post-pass of Section 5.1.

    "Pruning first removes all moves that deliver a token repeatedly to
    the same vertex, and then works back from the last move to the first,
    removing moves that deliver tokens which were never used by the
    destination vertex."

Pass 1 (*dedup*) keeps only the earliest delivery of each token to each
vertex and drops deliveries of tokens the vertex started with.  This never
changes any possession set, so validity and success are preserved exactly.

Pass 2 (*backward sweep*) walks timesteps from last to first and removes a
delivery of token ``t`` to vertex ``v`` when ``v`` neither wants ``t`` nor
forwards ``t`` in any *retained* later timestep.  Because removability at
timestep ``i`` depends only on retained moves at timesteps ``> i`` (a
vertex can only send what it possessed at the start of the step), a single
backward pass removes entire useless relay chains.

Pruning never changes the makespan: timesteps are kept in place, possibly
empty.  Use :func:`drop_empty_tail` afterwards if trailing empty steps
should be trimmed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.problem import Problem
from repro.core.schedule import Schedule, Timestep
from repro.core.tokenset import EMPTY_TOKENSET, TokenSet

__all__ = ["PruneStats", "prune_schedule", "drop_empty_tail"]


@dataclass(frozen=True)
class PruneStats:
    """How much each pruning pass removed."""

    original_bandwidth: int
    after_dedup: int
    after_backward: int

    @property
    def removed_by_dedup(self) -> int:
        return self.original_bandwidth - self.after_dedup

    @property
    def removed_by_backward(self) -> int:
        return self.after_dedup - self.after_backward

    @property
    def total_removed(self) -> int:
        return self.original_bandwidth - self.after_backward


def _dedup_pass(problem: Problem, schedule: Schedule) -> List[Dict[Tuple[int, int], TokenSet]]:
    """Keep only the first delivery of each token to each vertex.

    Within one timestep, parallel deliveries of the same token to the same
    vertex over different arcs are reduced to one (lowest source id wins,
    for determinism).
    """
    delivered: List[TokenSet] = list(problem.have)
    new_steps: List[Dict[Tuple[int, int], TokenSet]] = []
    for step in schedule.steps:
        kept: Dict[Tuple[int, int], TokenSet] = {}
        arriving_this_step: List[TokenSet] = [EMPTY_TOKENSET] * problem.num_vertices
        for (src, dst), tokens in sorted(step.sends.items()):
            useful = tokens - delivered[dst] - arriving_this_step[dst]
            if useful:
                kept[(src, dst)] = useful
                arriving_this_step[dst] = arriving_this_step[dst] | useful
        for v in range(problem.num_vertices):
            if arriving_this_step[v]:
                delivered[v] = delivered[v] | arriving_this_step[v]
        new_steps.append(kept)
    return new_steps


def _backward_pass(
    problem: Problem, steps: List[Dict[Tuple[int, int], TokenSet]]
) -> List[Dict[Tuple[int, int], TokenSet]]:
    """Remove deliveries whose token the destination never uses.

    ``future_sends[v]`` accumulates the tokens vertex ``v`` sends in
    retained timesteps strictly after the one being examined.
    """
    future_sends: List[TokenSet] = [EMPTY_TOKENSET] * problem.num_vertices
    pruned: List[Dict[Tuple[int, int], TokenSet]] = []
    for step in reversed(steps):
        kept: Dict[Tuple[int, int], TokenSet] = {}
        for (src, dst), tokens in step.items():
            used = tokens & (problem.want[dst] | future_sends[dst])
            if used:
                kept[(src, dst)] = used
        for (src, _dst), tokens in kept.items():
            future_sends[src] = future_sends[src] | tokens
        pruned.append(kept)
    pruned.reverse()
    return pruned


def prune_schedule(problem: Problem, schedule: Schedule) -> Tuple[Schedule, PruneStats]:
    """Apply both pruning passes; return the pruned schedule and stats.

    The input schedule must be valid for ``problem``; the output is valid,
    has the same makespan, never more bandwidth, and is successful iff the
    input was.
    """
    deduped = _dedup_pass(problem, schedule)
    after_dedup_bw = sum(
        len(tokens) for step in deduped for tokens in step.values()
    )
    swept = _backward_pass(problem, deduped)
    pruned = Schedule([Timestep(step) for step in swept])
    stats = PruneStats(
        original_bandwidth=schedule.bandwidth,
        after_dedup=after_dedup_bw,
        after_backward=pruned.bandwidth,
    )
    return pruned, stats


def drop_empty_tail(schedule: Schedule) -> Schedule:
    """Trim trailing timesteps that carry no moves.

    Pruning keeps empty steps in place so the makespan is comparable with
    the unpruned run; call this when the shortest equivalent schedule is
    wanted instead.
    """
    steps = list(schedule.steps)
    while steps and not steps[-1]:
        steps.pop()
    return Schedule(steps)
