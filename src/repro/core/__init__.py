"""Core model of the Overlay Network Content Distribution problem.

Exports the problem instance (:class:`Problem`, :class:`Arc`), token sets,
schedules with the polynomial-time validity/success verifier, the pruning
post-pass, the paper's lower bounds, and schedule metrics.
"""

from repro.core.fairness import (
    FairnessReport,
    VertexAccounting,
    account_schedule,
    jain_index,
)
from repro.core.bounds import (
    InfeasibleBoundError,
    diameter_knowledge_bound,
    lookahead_timestep_bound,
    remaining_bandwidth,
    remaining_timesteps,
)
from repro.core.metrics import (
    ScheduleMetrics,
    completion_times,
    evaluate_schedule,
    progress_curve,
)
from repro.core.problem import Arc, Problem, ProblemValidationError
from repro.core.pruning import PruneStats, drop_empty_tail, prune_schedule
from repro.core.schedule import Move, Schedule, ScheduleError, Timestep
from repro.core.tokenset import EMPTY_TOKENSET, TokenSet

__all__ = [
    "Arc",
    "EMPTY_TOKENSET",
    "FairnessReport",
    "InfeasibleBoundError",
    "Move",
    "Problem",
    "ProblemValidationError",
    "PruneStats",
    "Schedule",
    "ScheduleError",
    "ScheduleMetrics",
    "Timestep",
    "TokenSet",
    "VertexAccounting",
    "account_schedule",
    "completion_times",
    "jain_index",
    "diameter_knowledge_bound",
    "drop_empty_tail",
    "evaluate_schedule",
    "lookahead_timestep_bound",
    "progress_curve",
    "prune_schedule",
    "remaining_bandwidth",
    "remaining_timesteps",
]
