"""The Overlay Network Content Distribution problem instance.

Section 3.1 of the paper defines the model: a simple, weighted directed
graph ``G = (V, E)`` with arc capacities ``c : E -> N``, a set of tokens
``T``, a *have* function ``h : V -> 2^T`` giving each vertex's initial
tokens, and a *want* function ``w : V -> 2^T`` giving the tokens each
vertex must eventually possess.

:class:`Problem` is the immutable in-memory form of one instance.  It is
shared by every other subsystem (simulator, heuristics, exact solvers,
bounds, reductions), so it also precomputes the adjacency structure and
offers the graph-theoretic helpers (distances, diameter, reachability)
those subsystems need.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.tokenset import EMPTY_TOKENSET, TokenSet

__all__ = ["Arc", "Problem", "ProblemValidationError"]

_UNREACHABLE = -1


class ProblemValidationError(ValueError):
    """Raised when a :class:`Problem` is structurally invalid."""


@dataclass(frozen=True)
class Arc:
    """A directed overlay link ``src -> dst`` with an integer capacity.

    Capacity is the number of tokens the link can carry in one timestep
    (the paper's ``c(u, v)``).  Multi-arcs in an input graph should be
    merged into one arc whose capacity is the sum, as the paper notes.
    """

    src: int
    dst: int
    capacity: int

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ProblemValidationError(
                f"arc endpoints must be non-negative, got ({self.src}, {self.dst})"
            )
        if self.src == self.dst:
            raise ProblemValidationError(
                f"self-arcs are implicit (storage); explicit self-arc at {self.src}"
            )
        if self.capacity < 1:
            raise ProblemValidationError(
                f"arc ({self.src}, {self.dst}) must have capacity >= 1, "
                f"got {self.capacity}"
            )


class Problem:
    """One immutable OCD instance: graph, capacities, tokens, have/want.

    Parameters
    ----------
    num_vertices:
        ``|V|``; vertices are the integers ``0..num_vertices-1``.
    num_tokens:
        ``|T|``; tokens are the integers ``0..num_tokens-1``.
    arcs:
        The directed arcs with their capacities.  At most one arc per
        ordered vertex pair (the graph is simple).
    have:
        ``h(v)`` for each vertex, as a sequence indexed by vertex id.
    want:
        ``w(v)`` for each vertex, as a sequence indexed by vertex id.
    name:
        Optional human-readable label used in reports.
    """

    __slots__ = (
        "num_vertices",
        "num_tokens",
        "arcs",
        "have",
        "want",
        "name",
        "_out_arcs",
        "_in_arcs",
        "_capacity",
        "_dist_cache",
    )

    def __init__(
        self,
        num_vertices: int,
        num_tokens: int,
        arcs: Iterable[Arc],
        have: Sequence[TokenSet],
        want: Sequence[TokenSet],
        name: str = "",
    ) -> None:
        self.num_vertices = num_vertices
        self.num_tokens = num_tokens
        self.arcs: Tuple[Arc, ...] = tuple(arcs)
        self.have: Tuple[TokenSet, ...] = tuple(have)
        self.want: Tuple[TokenSet, ...] = tuple(want)
        self.name = name
        self._dist_cache: Optional[List[List[int]]] = None
        self._validate()
        self._build_adjacency()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        num_vertices: int,
        num_tokens: int,
        arcs: Iterable[Tuple[int, int, int]],
        have: Mapping[int, Iterable[int]],
        want: Mapping[int, Iterable[int]],
        name: str = "",
    ) -> "Problem":
        """Convenience constructor from plain tuples and dicts.

        ``arcs`` is an iterable of ``(src, dst, capacity)`` triples;
        ``have`` and ``want`` map vertex ids to iterables of token ids
        (vertices absent from the mapping get the empty set).
        """
        have_sets = [
            TokenSet.from_iterable(have.get(v, ())) for v in range(num_vertices)
        ]
        want_sets = [
            TokenSet.from_iterable(want.get(v, ())) for v in range(num_vertices)
        ]
        return cls(
            num_vertices,
            num_tokens,
            [Arc(u, v, c) for (u, v, c) in arcs],
            have_sets,
            want_sets,
            name=name,
        )

    @classmethod
    def from_networkx(
        cls,
        graph: Any,
        num_tokens: int,
        have: Mapping[int, Iterable[int]],
        want: Mapping[int, Iterable[int]],
        capacity_attr: str = "capacity",
        default_capacity: int = 1,
        name: str = "",
    ) -> "Problem":
        """Build a :class:`Problem` from a networkx graph.

        Undirected graphs become symmetric arc pairs.  Nodes must be the
        integers ``0..n-1`` (relabel first if not).  Capacities come from
        the given edge attribute, defaulting to ``default_capacity``.
        """
        n = graph.number_of_nodes()
        if sorted(graph.nodes()) != list(range(n)):
            raise ProblemValidationError(
                "networkx graph nodes must be the integers 0..n-1; "
                "use networkx.convert_node_labels_to_integers first"
            )
        arcs: List[Arc] = []
        if graph.is_directed():
            for u, v, data in graph.edges(data=True):
                arcs.append(Arc(u, v, int(data.get(capacity_attr, default_capacity))))
        else:
            for u, v, data in graph.edges(data=True):
                cap = int(data.get(capacity_attr, default_capacity))
                arcs.append(Arc(u, v, cap))
                arcs.append(Arc(v, u, cap))
        return cls.build(
            n,
            num_tokens,
            [(a.src, a.dst, a.capacity) for a in arcs],
            have,
            want,
            name=name,
        )

    # ------------------------------------------------------------------
    # Validation and adjacency
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.num_vertices < 1:
            raise ProblemValidationError(
                f"need at least one vertex, got {self.num_vertices}"
            )
        if self.num_tokens < 0:
            raise ProblemValidationError(
                f"num_tokens must be non-negative, got {self.num_tokens}"
            )
        if len(self.have) != self.num_vertices:
            raise ProblemValidationError(
                f"have has {len(self.have)} entries for {self.num_vertices} vertices"
            )
        if len(self.want) != self.num_vertices:
            raise ProblemValidationError(
                f"want has {len(self.want)} entries for {self.num_vertices} vertices"
            )
        universe = TokenSet.full(self.num_tokens)
        for v in range(self.num_vertices):
            if not self.have[v] <= universe:
                raise ProblemValidationError(
                    f"have({v}) contains tokens outside 0..{self.num_tokens - 1}"
                )
            if not self.want[v] <= universe:
                raise ProblemValidationError(
                    f"want({v}) contains tokens outside 0..{self.num_tokens - 1}"
                )
        seen = set()
        for arc in self.arcs:
            if arc.src >= self.num_vertices or arc.dst >= self.num_vertices:
                raise ProblemValidationError(
                    f"arc ({arc.src}, {arc.dst}) references a vertex "
                    f">= {self.num_vertices}"
                )
            key = (arc.src, arc.dst)
            if key in seen:
                raise ProblemValidationError(
                    f"duplicate arc {key}; merge multi-arcs by summing capacities"
                )
            seen.add(key)

    def _build_adjacency(self) -> None:
        out_arcs: List[List[Arc]] = [[] for _ in range(self.num_vertices)]
        in_arcs: List[List[Arc]] = [[] for _ in range(self.num_vertices)]
        capacity: Dict[Tuple[int, int], int] = {}
        for arc in self.arcs:
            out_arcs[arc.src].append(arc)
            in_arcs[arc.dst].append(arc)
            capacity[(arc.src, arc.dst)] = arc.capacity
        self._out_arcs = tuple(tuple(lst) for lst in out_arcs)
        self._in_arcs = tuple(tuple(lst) for lst in in_arcs)
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    def out_arcs(self, v: int) -> Tuple[Arc, ...]:
        """Arcs leaving vertex ``v``."""
        return self._out_arcs[v]

    def in_arcs(self, v: int) -> Tuple[Arc, ...]:
        """Arcs entering vertex ``v``."""
        return self._in_arcs[v]

    def out_neighbors(self, v: int) -> Tuple[int, ...]:
        return tuple(a.dst for a in self._out_arcs[v])

    def in_neighbors(self, v: int) -> Tuple[int, ...]:
        return tuple(a.src for a in self._in_arcs[v])

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """All vertices adjacent to ``v`` in either direction.

        Knowledge in the LOCD model travels bidirectionally along arcs
        (Section 4.1), so gossip neighborhoods use this, not out/in alone.
        """
        return tuple(
            sorted({a.dst for a in self._out_arcs[v]} | {a.src for a in self._in_arcs[v]})
        )

    def capacity(self, u: int, v: int) -> int:
        """Capacity of arc ``(u, v)``; raises :class:`KeyError` if absent."""
        return self._capacity[(u, v)]

    def has_arc(self, u: int, v: int) -> bool:
        return (u, v) in self._capacity

    def in_capacity(self, v: int) -> int:
        """Total token-per-step intake of vertex ``v`` (sum of in-arc capacities)."""
        return sum(a.capacity for a in self._in_arcs[v])

    def out_capacity(self, v: int) -> int:
        """Total token-per-step output of vertex ``v``."""
        return sum(a.capacity for a in self._out_arcs[v])

    def distances_from(self, src: int) -> List[int]:
        """Unweighted (hop-count) shortest-path distances from ``src``.

        Unreachable vertices get ``-1``.  Results are cached per problem,
        so repeated calls (the bounds module sweeps all sources) are cheap.
        """
        if self._dist_cache is None:
            self._dist_cache = [[] for _ in range(self.num_vertices)]
        cached = self._dist_cache[src]
        if cached:
            return cached
        dist = [_UNREACHABLE] * self.num_vertices
        dist[src] = 0
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for arc in self._out_arcs[u]:
                if dist[arc.dst] == _UNREACHABLE:
                    dist[arc.dst] = dist[u] + 1
                    queue.append(arc.dst)
        self._dist_cache[src] = dist
        return dist

    def distance(self, src: int, dst: int) -> int:
        """Hop distance ``src -> dst`` (``-1`` if unreachable)."""
        return self.distances_from(src)[dst]

    def diameter(self) -> int:
        """Longest finite shortest-path distance between any vertex pair.

        Ignores unreachable pairs; returns 0 for a single vertex.  Used by
        the LOCD flood-then-optimal algorithm (Section 4.2), which floods
        knowledge for ``diameter`` steps before executing an optimal plan.
        """
        best = 0
        for v in range(self.num_vertices):
            for d in self.distances_from(v):
                if d > best:
                    best = d
        return best

    # ------------------------------------------------------------------
    # Problem-level queries
    # ------------------------------------------------------------------
    def all_tokens(self) -> TokenSet:
        return TokenSet.full(self.num_tokens)

    def holders(self, token: int) -> List[int]:
        """All vertices that initially possess ``token``."""
        return [v for v in range(self.num_vertices) if token in self.have[v]]

    def wanters(self, token: int) -> List[int]:
        """All vertices that want ``token``."""
        return [v for v in range(self.num_vertices) if token in self.want[v]]

    def missing(self, v: int) -> TokenSet:
        """Tokens vertex ``v`` wants but does not initially have."""
        return self.want[v] - self.have[v]

    def total_demand(self) -> int:
        """Total wanted-but-missing token count — the paper's trivial
        remaining-bandwidth lower bound evaluated at the initial state."""
        return sum(len(self.missing(v)) for v in range(self.num_vertices))

    def is_trivially_satisfied(self) -> bool:
        """True when every want is already covered by the initial haves."""
        return all(self.want[v] <= self.have[v] for v in range(self.num_vertices))

    def is_satisfiable(self) -> bool:
        """Whether *some* successful schedule exists.

        A token can reach a wanter iff the wanter is graph-reachable from
        at least one initial holder; capacities never make an instance
        infeasible (a single move per timestep always fits), they only
        slow it down.  This runs one BFS per vertex at worst.
        """
        for token in range(self.num_tokens):
            holders = self.holders(token)
            if not holders:
                if any(
                    token in self.want[v] and token not in self.have[v]
                    for v in range(self.num_vertices)
                ):
                    return False
                continue
            reachable = [False] * self.num_vertices
            queue = deque()
            for h in holders:
                reachable[h] = True
                queue.append(h)
            while queue:
                u = queue.popleft()
                for arc in self._out_arcs[u]:
                    if not reachable[arc.dst]:
                        reachable[arc.dst] = True
                        queue.append(arc.dst)
            for v in range(self.num_vertices):
                if token in self.want[v] and not reachable[v]:
                    return False
        return True

    def move_bound(self) -> int:
        """Theorem 1's bound: any satisfiable instance needs at most
        ``m(n-1)`` moves (each vertex gains each token at most once)."""
        return self.num_tokens * (self.num_vertices - 1)

    def encoding_bits_bound(self) -> int:
        """Theorem 2's bound on the description length of some successful
        schedule, in bits: ``O(nm (log n + log m))``.

        We return the explicit count from the proof: ``m(n-1)`` moves of
        ``2 log2 n + log2 m`` bits each, plus per-timestep segment counts
        of ``log2(nm)`` bits for up to ``m(n-1)`` timesteps.
        """
        import math

        n, m = self.num_vertices, self.num_tokens
        if n <= 1 or m == 0:
            return 0
        moves = m * (n - 1)
        bits_per_move = 2 * math.ceil(math.log2(max(n, 2))) + math.ceil(
            math.log2(max(m, 2))
        )
        segment_bits = math.ceil(math.log2(max(n * m, 2)))
        return moves * (bits_per_move + segment_bits)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form suitable for ``json.dump``."""
        return {
            "name": self.name,
            "num_vertices": self.num_vertices,
            "num_tokens": self.num_tokens,
            "arcs": [[a.src, a.dst, a.capacity] for a in self.arcs],
            "have": {
                str(v): sorted(self.have[v])
                for v in range(self.num_vertices)
                if self.have[v]
            },
            "want": {
                str(v): sorted(self.want[v])
                for v in range(self.num_vertices)
                if self.want[v]
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Problem":
        """Inverse of :meth:`to_dict`."""
        return cls.build(
            int(data["num_vertices"]),
            int(data["num_tokens"]),
            [tuple(arc) for arc in data["arcs"]],
            {int(v): tokens for v, tokens in data.get("have", {}).items()},
            {int(v): tokens for v, tokens in data.get("want", {}).items()},
            name=data.get("name", ""),
        )

    def to_networkx(self) -> Any:
        """Export the overlay graph as a ``networkx.DiGraph`` with
        ``capacity`` edge attributes and ``have``/``want`` node attributes.

        Typed ``Any`` so networkx stays a lazy, optional import here.
        """
        import networkx as nx

        g = nx.DiGraph()
        for v in range(self.num_vertices):
            g.add_node(v, have=sorted(self.have[v]), want=sorted(self.want[v]))
        for arc in self.arcs:
            g.add_edge(arc.src, arc.dst, capacity=arc.capacity)
        return g

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Problem):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.num_tokens == other.num_tokens
            and set(self.arcs) == set(other.arcs)
            and self.have == other.have
            and self.want == other.want
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.num_vertices,
                self.num_tokens,
                frozenset(self.arcs),
                self.have,
                self.want,
            )
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Problem{label} n={self.num_vertices} m={self.num_tokens} "
            f"arcs={len(self.arcs)}>"
        )
