"""Contribution accounting and fairness metrics.

The paper's introduction lists fairness — "ensuring that nodes
contribute roughly in proportion to one another" — among the target
metrics of content distribution systems, though its evaluation focuses
on speed and bandwidth.  This module supplies the accounting needed to
study that axis on any schedule:

* per-vertex **upload** (tokens sent) and **download** (tokens received,
  split into useful first-copies and redundant duplicates);
* **Jain's fairness index** over uploads — 1.0 when every participant
  contributes equally, approaching ``1/n`` when one vertex does all the
  work;
* **share ratios** (upload/useful-download), the BitTorrent notion of a
  node's give/take balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.problem import Problem
from repro.core.schedule import Schedule
from repro.core.tokenset import EMPTY_TOKENSET, TokenSet

__all__ = ["VertexAccounting", "FairnessReport", "account_schedule", "jain_index"]


@dataclass(frozen=True)
class VertexAccounting:
    """What one vertex gave and took over a schedule."""

    vertex: int
    uploaded: int
    downloaded_useful: int
    downloaded_redundant: int

    @property
    def downloaded(self) -> int:
        return self.downloaded_useful + self.downloaded_redundant

    @property
    def share_ratio(self) -> Optional[float]:
        """Upload per useful download (``None`` for pure seeders that
        never downloaded anything)."""
        if self.downloaded_useful == 0:
            return None
        return self.uploaded / self.downloaded_useful


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 for perfectly equal allocations, ``1/n`` when a single
    participant takes everything.  An all-zero allocation counts as
    perfectly fair (everyone equally contributed nothing).
    """
    if not values:
        raise ValueError("jain_index needs at least one value")
    if any(v < 0 for v in values):
        raise ValueError("jain_index is defined for non-negative values")
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class FairnessReport:
    """Schedule-wide fairness summary."""

    per_vertex: Tuple[VertexAccounting, ...]
    upload_jain: float
    participation: float  # fraction of vertices that uploaded anything
    max_upload_share: float  # largest single vertex's share of all uploads
    redundancy: float  # redundant downloads / total downloads (0 if none)

    def vertex(self, v: int) -> VertexAccounting:
        return self.per_vertex[v]


def account_schedule(problem: Problem, schedule: Schedule) -> FairnessReport:
    """Audit a schedule: who uploaded, who downloaded, how fairly.

    A received token counts as *useful* the first time the vertex gains
    it and *redundant* on every re-delivery (including same-step
    duplicates beyond the first).
    """
    uploaded = [0] * problem.num_vertices
    useful = [0] * problem.num_vertices
    redundant = [0] * problem.num_vertices
    possession: List[TokenSet] = list(problem.have)
    for step in schedule.steps:
        arriving: Dict[int, TokenSet] = {}
        for (src, dst), tokens in step.sends.items():
            uploaded[src] += len(tokens)
            fresh = tokens - possession[dst]
            already_arriving = arriving.get(dst, EMPTY_TOKENSET)
            new_now = fresh - already_arriving
            useful[dst] += len(new_now)
            redundant[dst] += len(tokens) - len(new_now)
            arriving[dst] = already_arriving | fresh
        for dst, tokens in arriving.items():
            possession[dst] = possession[dst] | tokens

    per_vertex = tuple(
        VertexAccounting(v, uploaded[v], useful[v], redundant[v])
        for v in range(problem.num_vertices)
    )
    total_up = sum(uploaded)
    total_down = sum(useful) + sum(redundant)
    return FairnessReport(
        per_vertex=per_vertex,
        upload_jain=jain_index(uploaded),
        participation=(
            sum(1 for u in uploaded if u > 0) / problem.num_vertices
        ),
        max_upload_share=(max(uploaded) / total_up) if total_up else 0.0,
        redundancy=(sum(redundant) / total_down) if total_down else 0.0,
    )
