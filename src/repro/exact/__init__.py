"""Exact solvers for small OCD instances.

Three independent oracles, cross-checked in the test suite:

* the Section 3.4 time-indexed integer program (HiGHS via scipy) for
  minimum bandwidth at a makespan horizon, optimal makespans, and the
  hybrid min-bandwidth-among-fastest objective;
* a branch-and-bound search for optimal makespans (DFOCD / FOCD);
* Steiner-arborescence solvers for the time-unconstrained minimum
  bandwidth (EOCD) and its serial schedule.
"""

from repro.exact.branch_and_bound import (
    SearchBudget,
    SearchExhausted,
    decide_dfocd,
    solve_focd_bnb,
)
from repro.exact.ilp import (
    IlpSolution,
    min_makespan_ilp,
    solve_eocd_ilp,
    solve_hybrid_ilp,
)
from repro.exact.pareto import (
    ParetoPoint,
    cheapest_within_factor,
    pareto_frontier,
)
from repro.exact.relaxation import (
    fractional_bandwidth_bound,
    fractional_makespan_bound,
)
from repro.exact.steiner import (
    SteinerResult,
    eocd_serial_schedule,
    min_bandwidth_approx,
    min_bandwidth_exact,
    steiner_cost_exact,
    steiner_tree_approx,
)

__all__ = [
    "IlpSolution",
    "ParetoPoint",
    "SearchBudget",
    "SearchExhausted",
    "SteinerResult",
    "cheapest_within_factor",
    "decide_dfocd",
    "pareto_frontier",
    "eocd_serial_schedule",
    "fractional_bandwidth_bound",
    "fractional_makespan_bound",
    "min_bandwidth_approx",
    "min_bandwidth_exact",
    "min_makespan_ilp",
    "solve_eocd_ilp",
    "solve_focd_bnb",
    "solve_hybrid_ilp",
    "steiner_cost_exact",
    "steiner_tree_approx",
]
