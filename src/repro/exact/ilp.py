"""The time-indexed integer program of Section 3.4.

The paper extends the graph with a self-arc at every vertex (storage) and
creates a 0/1 variable ``x[i, (u, v), t]`` meaning "token ``t`` crosses
arc ``(u, v)`` during timestep ``i``".  With initial conditions
``x[0, (v, v), t] = 1`` iff ``t ∈ h(v)``, the constraints are:

* possession — a token can leave ``u`` at step ``i`` only if some arc
  into ``u`` (including the self-arc) carried it at step ``i - 1``;
* capacity — at most ``c(u, v)`` tokens per real arc per step (self-arcs,
  i.e. storage, are uncapacitated);
* demand — the self-arc of ``v`` holds every wanted token at the final
  step ``τ + 1``.

Minimizing the number of real-arc crossings over steps ``1..τ`` yields a
bandwidth-optimal (EOCD) schedule among all schedules of makespan at most
``τ``; scanning ``τ`` upward until the program becomes feasible yields the
optimal makespan (FOCD), and re-solving at that horizon gives the
min-bandwidth-among-fastest hybrid the paper discusses.

The paper used a generic IP solver; we solve the identical program with
HiGHS through :func:`scipy.optimize.milp`.  Instances are solved exactly —
this is exponential-time in general (the problem is NP-complete), so keep
``n``, ``m``, and ``τ`` small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.bounds import remaining_timesteps
from repro.core.problem import Problem
from repro.core.schedule import Schedule, Timestep
from repro.core.tokenset import TokenSet

__all__ = ["IlpSolution", "solve_eocd_ilp", "min_makespan_ilp", "solve_hybrid_ilp"]


@dataclass(frozen=True)
class IlpSolution:
    """An exact solution extracted from the integer program."""

    schedule: Schedule
    bandwidth: int
    horizon: int
    feasible: bool


class _IlpIndex:
    """Dense variable indexing for the time-indexed program.

    Variables are laid out as ``[step i][arc a][token t]`` where the arc
    list is the real arcs followed by the ``n`` self-arcs.  Real-arc
    variables exist for steps ``1..τ``; self-arc variables for steps
    ``1..τ + 1``.
    """

    def __init__(self, problem: Problem, horizon: int, tokens: List[int]) -> None:
        self.problem = problem
        self.horizon = horizon
        self.tokens = tokens
        self.token_pos = {t: k for k, t in enumerate(tokens)}
        self.num_real = len(problem.arcs)
        self.num_self = problem.num_vertices
        self.per_step_real = self.num_real * len(tokens)
        self.per_step_self = self.num_self * len(tokens)
        # Steps 1..horizon have real + self variables; step horizon+1 has
        # self variables only.
        self.num_vars = (
            horizon * (self.per_step_real + self.per_step_self) + self.per_step_self
        )
        self.arc_pos = {
            (arc.src, arc.dst): k for k, arc in enumerate(problem.arcs)
        }

    def real_var(self, step: int, arc_index: int, token: int) -> int:
        """Variable id of token ``token`` on real arc ``arc_index`` at
        ``step`` (1-based, must be <= horizon)."""
        base = (step - 1) * (self.per_step_real + self.per_step_self)
        return base + arc_index * len(self.tokens) + self.token_pos[token]

    def self_var(self, step: int, vertex: int, token: int) -> int:
        """Variable id of the storage self-arc of ``vertex`` at ``step``
        (1-based, may be horizon + 1)."""
        if step <= self.horizon:
            base = (
                (step - 1) * (self.per_step_real + self.per_step_self)
                + self.per_step_real
            )
        else:
            base = self.horizon * (self.per_step_real + self.per_step_self)
        return base + vertex * len(self.tokens) + self.token_pos[token]


def _active_tokens(problem: Problem) -> List[int]:
    """Tokens that still need to move: wanted by some vertex lacking them.

    Tokens nobody is missing never appear in a bandwidth-minimal schedule
    (moving them only costs), so they are dropped from the program.
    """
    active = []
    for t in range(problem.num_tokens):
        if any(
            t in problem.want[v] and t not in problem.have[v]
            for v in range(problem.num_vertices)
        ):
            active.append(t)
    return active


def _build_constraints(
    problem: Problem, index: _IlpIndex
) -> Tuple[List[LinearConstraint], np.ndarray]:
    """Assemble the possession, capacity, and demand constraints."""
    horizon = index.horizon
    tokens = index.tokens
    n_vars = index.num_vars
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    row = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # Possession: x[i, (u, .), t] - sum_{(z, u) in E'} x[i-1, (z, u), t] <= rhs
    # where the i = 1 incoming sum is the constant h(u) indicator.
    for step in range(1, horizon + 2):
        for token in tokens:
            for u in range(problem.num_vertices):
                outgoing: List[int] = []
                if step <= horizon:
                    outgoing.extend(
                        index.real_var(step, index.arc_pos[(u, arc.dst)], token)
                        for arc in problem.out_arcs(u)
                    )
                outgoing.append(index.self_var(step, u, token))
                if step == 1:
                    rhs = 1.0 if token in problem.have[u] else 0.0
                    for var in outgoing:
                        add_entry(row, var, 1.0)
                        lower.append(-np.inf)
                        upper.append(rhs)
                        row += 1
                        # each constraint is a single-variable row; new row
                        # per outgoing variable
                    continue
                incoming = [
                    index.self_var(step - 1, u, token),
                ]
                if step - 1 <= horizon:
                    incoming.extend(
                        index.real_var(step - 1, index.arc_pos[(arc.src, u)], token)
                        for arc in problem.in_arcs(u)
                    )
                for var in outgoing:
                    add_entry(row, var, 1.0)
                    for inc in incoming:
                        add_entry(row, inc, -1.0)
                    lower.append(-np.inf)
                    upper.append(0.0)
                    row += 1

    # Capacity: sum_t x[i, (u, v), t] <= c(u, v) for real arcs.
    for step in range(1, horizon + 1):
        for arc_index, arc in enumerate(problem.arcs):
            for token in tokens:
                add_entry(row, index.real_var(step, arc_index, token), 1.0)
            lower.append(-np.inf)
            upper.append(float(arc.capacity))
            row += 1

    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, n_vars)
    )
    constraints = [LinearConstraint(matrix, np.array(lower), np.array(upper))]

    # Demand: x[horizon + 1, (v, v), t] >= 1 for t in w(v), folded into
    # variable bounds below; returned as a lower-bound vector.
    var_lower = np.zeros(n_vars)
    for v in range(problem.num_vertices):
        for token in problem.want[v]:
            if token in index.token_pos:
                var_lower[index.self_var(horizon + 1, v, token)] = 1.0
    return constraints, var_lower


def _extract_schedule(
    problem: Problem, index: _IlpIndex, solution: np.ndarray
) -> Schedule:
    steps: List[Timestep] = []
    for step in range(1, index.horizon + 1):
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for arc_index, arc in enumerate(problem.arcs):
            mask = 0
            for token in index.tokens:
                if solution[index.real_var(step, arc_index, token)] > 0.5:
                    mask |= 1 << token
            if mask:
                sends[(arc.src, arc.dst)] = TokenSet(mask)
        steps.append(Timestep(sends))
    return Schedule(steps)


def solve_eocd_ilp(
    problem: Problem, horizon: int, time_limit: Optional[float] = None
) -> IlpSolution:
    """Minimum-bandwidth schedule of makespan at most ``horizon``.

    Returns an infeasible :class:`IlpSolution` (empty schedule) when no
    successful schedule of that length exists.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    tokens = _active_tokens(problem)
    if not tokens:
        return IlpSolution(Schedule([]), 0, horizon, feasible=True)
    if horizon == 0:
        return IlpSolution(Schedule([]), 0, 0, feasible=False)
    index = _IlpIndex(problem, horizon, tokens)
    constraints, var_lower = _build_constraints(problem, index)

    objective = np.zeros(index.num_vars)
    for step in range(1, horizon + 1):
        for arc_index in range(index.num_real):
            for token in tokens:
                objective[index.real_var(step, arc_index, token)] = 1.0

    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = milp(
        c=objective,
        constraints=constraints,
        integrality=np.ones(index.num_vars),
        bounds=Bounds(var_lower, np.ones(index.num_vars)),
        options=options,
    )
    if not result.success:
        return IlpSolution(Schedule([]), 0, horizon, feasible=False)
    schedule = _extract_schedule(problem, index, result.x)
    return IlpSolution(
        schedule=schedule,
        bandwidth=schedule.bandwidth,
        horizon=horizon,
        feasible=True,
    )


def min_makespan_ilp(
    problem: Problem,
    max_horizon: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> Optional[int]:
    """Optimal FOCD makespan by scanning horizons with the IP.

    Starts at the :func:`remaining_timesteps` lower bound and increases
    until the program is feasible.  Returns ``None`` when the instance is
    unsatisfiable (or ``max_horizon`` is exhausted).
    """
    if problem.is_trivially_satisfied():
        return 0
    if not problem.is_satisfiable():
        return None
    if max_horizon is None:
        max_horizon = max(problem.move_bound(), 1)
    horizon = max(1, remaining_timesteps(problem))
    while horizon <= max_horizon:
        if solve_eocd_ilp(problem, horizon, time_limit=time_limit).feasible:
            return horizon
        horizon += 1
    return None


def solve_hybrid_ilp(
    problem: Problem,
    max_horizon: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> Optional[IlpSolution]:
    """Bandwidth-optimal among time-optimal schedules.

    This is the hybrid objective the paper sketches at the end of §3.4
    (bandwidth-optimal subject to optimal time): find the minimum feasible
    makespan, then minimize bandwidth at exactly that horizon.
    """
    horizon = min_makespan_ilp(problem, max_horizon, time_limit=time_limit)
    if horizon is None:
        return None
    return solve_eocd_ilp(problem, horizon, time_limit=time_limit)
