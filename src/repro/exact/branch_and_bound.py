"""Branch-and-bound search for optimal FOCD makespans.

The paper computes "optimal solutions for small graphs" with a
branch-and-bound search strategy alongside the integer program; this is
that second, independent exact oracle.  The search explores timesteps
depth-first with three prunings:

* **Full loads** — for makespan (not bandwidth), extra possession never
  hurts: any schedule can be padded so every arc carries
  ``min(capacity, |useful|)`` useful tokens without finishing later.  The
  search therefore only branches over *which* useful tokens fill each
  arc, not over how many.
* **Admissible lower bound** — the radius-closure bound of
  :mod:`repro.core.bounds`, evaluated on the search state with
  precomputed all-pairs distances; a node is cut when the bound exceeds
  the remaining depth.
* **Transposition table** — possession states proven unreachable-to-goal
  within ``d`` steps are memoized, so permuted move orders are not
  re-explored.

The search is exponential (FOCD is NP-complete); :class:`SearchBudget`
guards against runaway instances by raising :class:`SearchExhausted`
after a configurable number of expanded nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.bounds import _reverse_distances_to
from repro.core.problem import Problem
from repro.core.schedule import Schedule, Timestep
from repro.core.tokenset import TokenSet

__all__ = [
    "SearchBudget",
    "SearchExhausted",
    "decide_dfocd",
    "solve_focd_bnb",
]

State = Tuple[int, ...]  # possession bitmask per vertex


class SearchExhausted(RuntimeError):
    """The node budget ran out before the search completed."""


@dataclass
class SearchBudget:
    """Caps the search effort; ``nodes`` counts expanded states."""

    max_nodes: int = 2_000_000
    nodes: int = 0

    def spend(self) -> None:
        self.nodes += 1
        if self.nodes > self.max_nodes:
            raise SearchExhausted(
                f"branch-and-bound exceeded {self.max_nodes} expanded nodes"
            )


class _Searcher:
    def __init__(self, problem: Problem, budget: SearchBudget) -> None:
        self.problem = problem
        self.budget = budget
        self.want_masks = tuple(w.mask for w in problem.want)
        # dist_to[v][u] = hop distance u -> v, for the admissible bound.
        self.dist_to = [
            _reverse_distances_to(problem, v) for v in range(problem.num_vertices)
        ]
        self.in_capacity = [
            max(problem.in_capacity(v), 1) for v in range(problem.num_vertices)
        ]
        # memo[state] = largest remaining depth proven insufficient.
        self.memo: Dict[State, int] = {}

    # ------------------------------------------------------------------
    def satisfied(self, state: State) -> bool:
        return all(
            want & ~mask == 0 for want, mask in zip(self.want_masks, state)
        )

    def lower_bound(self, state: State) -> int:
        """Admissible remaining-makespan bound on a search state.

        The radius-closure bound of the paper, computed from precomputed
        distances: a token whose nearest holder sits at distance > i
        cannot arrive within i steps, and arrival is throttled by the
        receiver's total in-capacity.
        """
        best = 0
        n = self.problem.num_vertices
        for v in range(n):
            needed = self.want_masks[v] & ~state[v]
            if not needed:
                continue
            dist_row = self.dist_to[v]
            dists: List[int] = []
            mask = needed
            while mask:
                low = mask & -mask
                token_bit = low
                mask ^= low
                nearest = math.inf
                for u in range(n):
                    if state[u] & token_bit and dist_row[u] != -1:
                        if dist_row[u] < nearest:
                            nearest = dist_row[u]
                            if nearest == 0:
                                break
                if nearest is math.inf:
                    return self.problem.move_bound() + 1  # unreachable: prune
                dists.append(int(nearest))
            dists.sort()
            cap = self.in_capacity[v]
            total = len(dists)
            consumed = 0
            vbest = dists[-1]
            for i in range(dists[-1]):
                while consumed < total and dists[consumed] <= i:
                    consumed += 1
                bound = i + math.ceil((total - consumed) / cap)
                if bound > vbest:
                    vbest = bound
            if vbest > best:
                best = vbest
        return best

    # ------------------------------------------------------------------
    def _arc_choices(
        self, state: State
    ) -> List[Tuple[int, int, List[Tuple[int, ...]]]]:
        """Per useful arc: all full-load token subsets it might carry."""
        choices = []
        for arc in self.problem.arcs:
            useful_mask = state[arc.src] & ~state[arc.dst]
            if not useful_mask:
                continue
            useful = []
            mask = useful_mask
            while mask:
                low = mask & -mask
                useful.append(low.bit_length() - 1)
                mask ^= low
            k = min(arc.capacity, len(useful))
            subsets = [tuple(c) for c in combinations(useful, k)]
            choices.append((arc.src, arc.dst, subsets))
        return choices

    def _timesteps(
        self, state: State, max_combinations: int
    ) -> Iterator[Tuple[Dict[Tuple[int, int], TokenSet], State]]:
        """Enumerate candidate timesteps (sends plus successor state)."""
        choices = self._arc_choices(state)
        if not choices:
            return
        total = 1
        for _src, _dst, subsets in choices:
            total *= len(subsets)
            if total > max_combinations:
                raise SearchExhausted(
                    f"timestep enumeration would exceed {max_combinations} "
                    f"combinations; the instance is too large for exact search"
                )

        def rec(
            idx: int, sends: Dict[Tuple[int, int], TokenSet], masks: List[int]
        ) -> Iterator[Tuple[Dict[Tuple[int, int], TokenSet], State]]:
            if idx == len(choices):
                yield dict(sends), tuple(masks)
                return
            src, dst, subsets = choices[idx]
            for subset in subsets:
                subset_mask = 0
                for token in subset:
                    subset_mask |= 1 << token
                sends[(src, dst)] = TokenSet(subset_mask)
                old = masks[dst]
                masks[dst] = old | subset_mask
                yield from rec(idx + 1, sends, masks)
                masks[dst] = old
                del sends[(src, dst)]

        yield from rec(0, {}, list(state))

    # ------------------------------------------------------------------
    def search(
        self, state: State, depth: int, max_combinations: int
    ) -> Optional[List[Dict[Tuple[int, int], TokenSet]]]:
        """Find a successful suffix of at most ``depth`` timesteps."""
        if self.satisfied(state):
            return []
        if depth == 0:
            return None
        if self.memo.get(state, -1) >= depth:
            return None
        if self.lower_bound(state) > depth:
            self.memo[state] = depth
            return None
        self.budget.spend()
        for sends, nxt in self._timesteps(state, max_combinations):
            if nxt == state:
                continue
            suffix = self.search(nxt, depth - 1, max_combinations)
            if suffix is not None:
                return [sends] + suffix
        self.memo[state] = depth
        return None


def decide_dfocd(
    problem: Problem,
    horizon: int,
    budget: Optional[SearchBudget] = None,
    max_combinations: int = 250_000,
) -> Optional[Schedule]:
    """The decision problem DFOCD: a successful schedule of at most
    ``horizon`` timesteps, or ``None`` when none exists.

    The returned schedule uses full arc loads; prune it with
    :func:`repro.core.pruning.prune_schedule` for a tidy witness.
    """
    if budget is None:
        budget = SearchBudget()
    searcher = _Searcher(problem, budget)
    state = tuple(h.mask for h in problem.have)
    steps = searcher.search(state, horizon, max_combinations)
    if steps is None:
        return None
    return Schedule([Timestep(sends) for sends in steps])


def solve_focd_bnb(
    problem: Problem,
    max_horizon: Optional[int] = None,
    budget: Optional[SearchBudget] = None,
    max_combinations: int = 250_000,
) -> Optional[Tuple[int, Schedule]]:
    """Optimal FOCD makespan with a witness schedule, by iterative
    deepening from the admissible lower bound.

    Returns ``None`` for unsatisfiable instances.
    """
    if problem.is_trivially_satisfied():
        return 0, Schedule([])
    if not problem.is_satisfiable():
        return None
    if max_horizon is None:
        max_horizon = max(problem.move_bound(), 1)
    if budget is None:
        budget = SearchBudget()
    searcher = _Searcher(problem, budget)
    state = tuple(h.mask for h in problem.have)
    depth = max(1, searcher.lower_bound(state))
    while depth <= max_horizon:
        steps = searcher.search(state, depth, max_combinations)
        if steps is not None:
            return depth, Schedule([Timestep(sends) for sends in steps])
        depth += 1
    return None
