"""EOCD via directed Steiner arborescences (Section 3.3).

    "To distribute any token using the minimum bandwidth is to distribute
    it along the min-cost tree from its source(s) to all nodes that want
    that token with unit-cost edges.  If we do not care about number of
    timesteps, then optimal bandwidth can be achieved by distributing
    each token serially over the Steiner tree."

Tokens do not interact on the bandwidth axis — moves simply add up, and
with unbounded time, capacities never bind (one move per timestep always
fits) — so the minimum total bandwidth is the sum over tokens of the
minimum-cost arborescence that connects the token's initial holders to
all vertices that want it.  Multiple holders are handled exactly as the
paper suggests: a virtual super-root with zero-cost arcs to every holder.

The directed Steiner tree problem is itself NP-hard, so two solvers are
provided:

* :func:`steiner_cost_exact` — the Dreyfus–Wagner dynamic program over
  terminal subsets, ``O(3^k n + 2^k n E)``; exact, use for ≲ 12 terminals.
* :func:`steiner_tree_approx` — the incremental shortest-path heuristic
  (repeatedly attach the cheapest-to-reach remaining terminal); fast and
  a good upper bound at any scale.

:func:`eocd_serial_schedule` turns the per-token trees into the paper's
serial schedule: one move per timestep, parents before children, giving a
valid successful schedule whose bandwidth equals the summed tree costs.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.problem import Problem
from repro.core.schedule import Schedule, Timestep
from repro.core.tokenset import TokenSet

__all__ = [
    "SteinerResult",
    "steiner_cost_exact",
    "steiner_tree_approx",
    "min_bandwidth_exact",
    "min_bandwidth_approx",
    "eocd_serial_schedule",
]

_ROOT = -1  # the virtual super-root


@dataclass(frozen=True)
class SteinerResult:
    """A per-token arborescence: its arcs (excluding virtual root arcs)
    and total unit cost."""

    token: int
    cost: int
    arcs: Tuple[Tuple[int, int], ...]


def _out_edges(problem: Problem, holders: Sequence[int]):
    """Adjacency of the augmented graph: the super-root reaches every
    holder at cost 0; real arcs cost 1."""

    def edges(v: int):
        if v == _ROOT:
            for h in holders:
                yield h, 0
        else:
            for arc in problem.out_arcs(v):
                yield arc.dst, 1

    return edges


def _dijkstra_tree(
    problem: Problem, holders: Sequence[int]
) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """Shortest paths from the super-root in the augmented graph."""
    edges = _out_edges(problem, holders)
    dist: Dict[int, int] = {_ROOT: 0}
    parent: Dict[int, Optional[int]] = {_ROOT: None}
    heap: List[Tuple[int, int]] = [(0, _ROOT)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist.get(v, math.inf):
            continue
        for u, w in edges(v):
            nd = d + w
            if nd < dist.get(u, math.inf):
                dist[u] = nd
                parent[u] = v
                heapq.heappush(heap, (nd, u))
    return dist, parent


def steiner_cost_exact(
    problem: Problem, holders: Sequence[int], terminals: Sequence[int]
) -> Optional[int]:
    """Exact minimum arborescence cost from the holder set to all
    terminals (Dreyfus–Wagner over terminal subsets).

    Returns ``None`` when some terminal is unreachable from every holder.
    """
    terminals = sorted(set(terminals) - set(holders))
    if not terminals:
        return 0
    if not holders:
        return None
    k = len(terminals)
    if k > 16:
        raise ValueError(
            f"{k} terminals is too many for the exact Steiner DP; "
            f"use steiner_tree_approx instead"
        )
    n = problem.num_vertices
    term_index = {t: i for i, t in enumerate(terminals)}
    INF = math.inf

    # dist[v][u]: hop distance v -> u in the real graph (BFS per vertex).
    dist = [problem.distances_from(v) for v in range(n)]

    full = (1 << k) - 1
    # dp[S][v]: min cost arborescence rooted at v covering terminal set S.
    dp = [[INF] * n for _ in range(full + 1)]
    for t, i in term_index.items():
        for v in range(n):
            d = dist[v][t]
            if d != -1:
                dp[1 << i][v] = d

    for subset in range(1, full + 1):
        if subset & (subset - 1) == 0:
            continue  # singletons initialized above
        row = dp[subset]
        # Splits at the root vertex.
        sub = (subset - 1) & subset
        while sub:
            other = subset ^ sub
            if sub < other:  # each unordered split once
                a, b = dp[sub], dp[other]
                for v in range(n):
                    c = a[v] + b[v]
                    if c < row[v]:
                        row[v] = c
            sub = (sub - 1) & subset
        # Root relocation: dp[S][v] = min_u dist(v -> u) + base[u], a
        # uniform-cost relaxation seeded from every u (Dijkstra on the
        # reversed graph with initial potentials).
        heap = [(row[v], v) for v in range(n) if row[v] < INF]
        heapq.heapify(heap)
        settled = [False] * n
        while heap:
            c, u = heapq.heappop(heap)
            if settled[u] or c > row[u]:
                continue
            settled[u] = True
            for arc in problem.in_arcs(u):
                nc = c + 1
                if nc < row[arc.src]:
                    row[arc.src] = nc
                    heapq.heappush(heap, (nc, arc.src))

    # Multiple holders may serve disjoint terminal subsets (the paper's
    # 0-cost-arc super-root): the optimum is the cheapest *partition* of
    # the terminals across holders, not the best single holder.
    root_cost = [INF] * (full + 1)
    root_cost[0] = 0.0
    for subset in range(1, full + 1):
        best = min(dp[subset][h] for h in holders)
        sub = (subset - 1) & subset
        while sub:
            other = subset ^ sub
            if sub < other:
                combined = root_cost[sub] + root_cost[other]
                if combined < best:
                    best = combined
            sub = (sub - 1) & subset
        root_cost[subset] = best
    best = root_cost[full]
    return None if best is INF else int(best)


def steiner_tree_approx(
    problem: Problem, holders: Sequence[int], terminals: Sequence[int]
) -> Optional[SteinerResult]:
    """Incremental shortest-path Steiner heuristic with an explicit tree.

    Grows the arborescence by repeatedly attaching the terminal that is
    cheapest to reach from the current tree.  Returns the arcs actually
    used, so the result can be turned into a schedule.
    """
    remaining: Set[int] = set(terminals) - set(holders)
    tree_vertices: Set[int] = set(holders)
    tree_arcs: Set[Tuple[int, int]] = set()
    if not remaining:
        return SteinerResult(token=-1, cost=0, arcs=())
    if not holders:
        return None
    while remaining:
        dist, parent = _dijkstra_tree(problem, sorted(tree_vertices))
        reachable = [t for t in sorted(remaining) if t in dist]
        if not reachable:
            return None
        target = min(reachable, key=lambda t: (dist[t], t))
        # Walk back to the tree, adding arcs.
        v = target
        path: List[Tuple[int, int]] = []
        while v not in tree_vertices and parent[v] is not None:
            p = parent[v]
            if p != _ROOT:
                path.append((p, v))
            v = p
        for src, dst in reversed(path):
            tree_arcs.add((src, dst))
            tree_vertices.add(dst)
        tree_vertices.add(target)
        remaining.discard(target)
    return SteinerResult(token=-1, cost=len(tree_arcs), arcs=tuple(sorted(tree_arcs)))


def _per_token_trees(
    problem: Problem, exact: bool
) -> Optional[List[SteinerResult]]:
    trees: List[SteinerResult] = []
    for token in range(problem.num_tokens):
        terminals = [
            v
            for v in range(problem.num_vertices)
            if token in problem.want[v] and token not in problem.have[v]
        ]
        if not terminals:
            continue
        holders = problem.holders(token)
        approx = steiner_tree_approx(problem, holders, terminals)
        if approx is None:
            return None
        arcs = approx.arcs
        cost = approx.cost
        if exact:
            exact_cost = steiner_cost_exact(problem, holders, terminals)
            if exact_cost is None:
                return None
            # Keep the approx tree as the constructive witness; the exact
            # DP provides the true cost (callers needing an exact witness
            # use the ILP).
            cost = exact_cost
        trees.append(SteinerResult(token=token, cost=cost, arcs=arcs))
    return trees


def min_bandwidth_exact(problem: Problem) -> Optional[int]:
    """Exact minimum total bandwidth, ignoring time: the sum of exact
    per-token Steiner costs.  ``None`` when unsatisfiable."""
    trees = _per_token_trees(problem, exact=True)
    if trees is None:
        return None
    return sum(t.cost for t in trees)


def min_bandwidth_approx(problem: Problem) -> Optional[int]:
    """Upper bound on minimum bandwidth from the shortest-path heuristic."""
    trees = _per_token_trees(problem, exact=False)
    if trees is None:
        return None
    return sum(t.cost for t in trees)


def eocd_serial_schedule(problem: Problem, exact: bool = False) -> Optional[Schedule]:
    """The paper's serial bandwidth-frugal schedule: each token flows down
    its tree one move per timestep, parents before children.

    With ``exact=False`` (default) the trees come from the approximation,
    so the schedule's bandwidth is an upper bound on the optimum; it is a
    valid, successful schedule either way.
    """
    trees = _per_token_trees(problem, exact=False)
    if trees is None:
        return None
    steps: List[Timestep] = []
    for tree in trees:
        # Order arcs so every arc's source already holds the token:
        # repeatedly emit arcs whose source is covered.
        covered = set(problem.holders(tree.token))
        pending = list(tree.arcs)
        while pending:
            progressed = False
            for arc in list(pending):
                src, dst = arc
                if src in covered:
                    steps.append(
                        Timestep({(src, dst): TokenSet.single(tree.token)})
                    )
                    covered.add(dst)
                    pending.remove(arc)
                    progressed = True
            if not progressed:
                raise AssertionError(
                    "steiner tree arcs do not form a connected arborescence"
                )
    return Schedule(steps)
