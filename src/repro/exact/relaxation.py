"""LP relaxations of the Section 3.4 integer program.

The time-indexed IP is exponential to solve exactly, but its *linear
relaxation* is polynomial and still a valid lower bound: every integral
schedule is a feasible fractional solution, so

* if the relaxation at horizon ``τ`` is infeasible, no ``τ``-step
  schedule exists → ``τ + 1`` lower-bounds the FOCD optimum;
* the relaxation's optimal objective lower-bounds the EOCD bandwidth of
  any schedule with makespan ≤ ``τ``.

These bounds sit strictly between the paper's cheap counting bounds
(§5.1) and the exact solvers: polynomial like the former, often much
tighter, e.g. on the Figure 1 gadget the fractional bandwidth bound at
horizon 2 certifies that fast schedules must pay for the relay copies.

Functions return ``math.inf``-free plain values; fractional bandwidth
bounds are rounded up (any integral schedule has integer bandwidth).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, linprog

from repro.core.bounds import remaining_timesteps
from repro.core.problem import Problem
from repro.exact.ilp import _active_tokens, _build_constraints, _IlpIndex

__all__ = [
    "fractional_bandwidth_bound",
    "fractional_makespan_bound",
]


def _solve_relaxation(problem: Problem, horizon: int) -> Optional[float]:
    """Optimal value of the LP relaxation at ``horizon`` (``None`` when
    the relaxation itself is infeasible)."""
    tokens = _active_tokens(problem)
    if not tokens:
        return 0.0
    if horizon == 0:
        return None
    index = _IlpIndex(problem, horizon, tokens)
    constraints, var_lower = _build_constraints(problem, index)
    objective = np.zeros(index.num_vars)
    for step in range(1, horizon + 1):
        for arc_index in range(index.num_real):
            for token in tokens:
                objective[index.real_var(step, arc_index, token)] = 1.0
    constraint = constraints[0]
    result = linprog(
        c=objective,
        A_ub=constraint.A,
        b_ub=np.asarray(constraint.ub),
        bounds=np.column_stack([var_lower, np.ones(index.num_vars)]),
        method="highs",
    )
    if result.status != 0:
        return None
    return float(result.fun)


def fractional_bandwidth_bound(problem: Problem, horizon: int) -> Optional[int]:
    """Lower bound on the bandwidth of any schedule of makespan ≤
    ``horizon`` (``None`` when even fractionally no such schedule
    exists).

    Always at least the §5.1 remaining-bandwidth count, because every
    wanted-but-missing token contributes at least one unit of incoming
    fractional flow; often strictly larger, because the relaxation also
    pays for relay hops.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    value = _solve_relaxation(problem, horizon)
    if value is None:
        return None
    return math.ceil(value - 1e-9)


def fractional_makespan_bound(
    problem: Problem, max_horizon: Optional[int] = None
) -> Optional[int]:
    """Smallest horizon whose LP relaxation is feasible — a polynomial
    lower bound on the FOCD optimum, at least as strong as the paper's
    radius-closure bound (which it uses as its starting point).

    Returns ``None`` for unsatisfiable instances.
    """
    if problem.is_trivially_satisfied():
        return 0
    if not problem.is_satisfiable():
        return None
    if max_horizon is None:
        max_horizon = max(problem.move_bound(), 1)
    horizon = max(1, remaining_timesteps(problem))
    while horizon <= max_horizon:
        if _solve_relaxation(problem, horizon) is not None:
            return horizon
        horizon += 1
    return None
