"""The time/bandwidth Pareto frontier of an instance.

Figure 1 shows minimizing timesteps and minimizing bandwidth can be at
odds, and §3.4 closes with the hybrid goal ("bandwidth-optimal subject
to the time being no more than some constant factor of the optimal
time, or vice versa") as ongoing work.  This module computes the whole
tradeoff exactly on small instances: for every makespan budget from the
FOCD optimum upward, the minimum achievable bandwidth, truncated once
the unconstrained EOCD optimum is reached (longer budgets cannot
improve further).

The frontier makes every hybrid objective trivial to answer: e.g.
"cheapest schedule at most 1.5x slower than optimal" is a lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.problem import Problem
from repro.core.schedule import Schedule
from repro.exact.ilp import min_makespan_ilp, solve_eocd_ilp
from repro.exact.steiner import min_bandwidth_exact

__all__ = ["ParetoPoint", "pareto_frontier", "cheapest_within_factor"]


@dataclass(frozen=True)
class ParetoPoint:
    """One optimal (makespan budget, minimum bandwidth) pair with a
    witness schedule achieving it."""

    horizon: int
    bandwidth: int
    schedule: Schedule


def pareto_frontier(
    problem: Problem,
    max_horizon: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> Optional[List[ParetoPoint]]:
    """All Pareto-optimal (time, bandwidth) pairs, fastest first.

    The first point is the FOCD optimum with its cheapest witness (the
    hybrid solution); the last reaches the unconstrained EOCD optimum.
    Intermediate horizons that do not improve bandwidth are dropped, so
    consecutive points strictly trade time for bandwidth.  Returns
    ``None`` for unsatisfiable instances.
    """
    optimum_time = min_makespan_ilp(problem, max_horizon, time_limit=time_limit)
    if optimum_time is None:
        return None
    floor = min_bandwidth_exact(problem)
    assert floor is not None  # satisfiable, so the Steiner costs exist
    if max_horizon is None:
        max_horizon = max(problem.move_bound(), 1)
    frontier: List[ParetoPoint] = []
    horizon = optimum_time
    best_bandwidth: Optional[int] = None
    while horizon <= max_horizon:
        solution = solve_eocd_ilp(problem, horizon, time_limit=time_limit)
        assert solution.feasible  # feasible at optimum_time, so beyond too
        if best_bandwidth is None or solution.bandwidth < best_bandwidth:
            frontier.append(
                ParetoPoint(horizon, solution.bandwidth, solution.schedule)
            )
            best_bandwidth = solution.bandwidth
        if best_bandwidth == floor:
            break
        horizon += 1
    return frontier


def cheapest_within_factor(
    problem: Problem,
    factor: float,
    max_horizon: Optional[int] = None,
) -> Optional[ParetoPoint]:
    """The §3.4 hybrid objective: minimum bandwidth among schedules
    whose makespan is at most ``factor`` times the optimal makespan.

    ``factor = 1.0`` is bandwidth-optimal-among-fastest;
    ``factor = inf`` (or large) degenerates to the EOCD optimum.
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    frontier = pareto_frontier(problem, max_horizon)
    if frontier is None:
        return None
    budget = int(factor * frontier[0].horizon)
    eligible = [p for p in frontier if p.horizon <= budget]
    # The frontier is bandwidth-decreasing, so the last eligible point
    # is the cheapest within budget.
    return eligible[-1] if eligible else frontier[0]
