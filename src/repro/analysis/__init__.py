"""Post-hoc analyses of schedules beyond makespan and bandwidth:
streaming startup delays (per-object latency) and heuristic comparison
summaries."""

from repro.analysis.comparison import ComparisonRow, compare_heuristics
from repro.analysis.streaming import (
    StreamingReport,
    arrival_times,
    playback_delays,
    streaming_report,
)

__all__ = [
    "ComparisonRow",
    "StreamingReport",
    "arrival_times",
    "compare_heuristics",
    "playback_delays",
    "streaming_report",
]
