"""One-call comparison of heuristics on a problem, across every metric
this library computes.

Ties the whole toolkit together: simulate each heuristic, then report
makespan, bandwidth (raw and pruned), lower-bound gaps, fairness, and
streaming startup delay side by side.  Used by the examples and handy in
notebooks; the figure drivers use the leaner
:mod:`repro.experiments.runner` instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.streaming import streaming_report
from repro.core.bounds import remaining_bandwidth, remaining_timesteps
from repro.core.fairness import account_schedule
from repro.core.pruning import prune_schedule
from repro.core.problem import Problem
from repro.heuristics import standard_heuristics
from repro.sim.engine import Engine, HeuristicProtocol

__all__ = ["ComparisonRow", "compare_heuristics"]


@dataclass(frozen=True)
class ComparisonRow:
    """All metrics for one heuristic on one problem."""

    heuristic: str
    success: bool
    makespan: int
    bandwidth: int
    pruned_bandwidth: int
    makespan_gap: float  # makespan / timestep lower bound (>= 1)
    bandwidth_gap: float  # pruned bandwidth / demand bound (>= 1)
    upload_jain: float
    redundancy: float
    mean_startup_delay: float

    def as_dict(self) -> dict:
        return {
            "heuristic": self.heuristic,
            "ok": self.success,
            "makespan": self.makespan,
            "bandwidth": self.bandwidth,
            "pruned_bw": self.pruned_bandwidth,
            "time_gap": round(self.makespan_gap, 2),
            "bw_gap": round(self.bandwidth_gap, 2),
            "jain": round(self.upload_jain, 3),
            "redundancy": round(self.redundancy, 3),
            "startup": round(self.mean_startup_delay, 2),
        }


def compare_heuristics(
    problem: Problem,
    heuristics: Optional[Sequence[HeuristicProtocol]] = None,
    seed: int = 0,
    playback_rate: int = 1,
) -> List[ComparisonRow]:
    """Run each heuristic once and collect the full metric row.

    Defaults to the paper's five heuristics; pass any sequence of
    heuristic objects (e.g. including
    :class:`repro.heuristics.SequentialHeuristic`) to widen the field.
    """
    if heuristics is None:
        heuristics = standard_heuristics()
    bound_ts = max(remaining_timesteps(problem), 1)
    bound_bw = max(remaining_bandwidth(problem), 1)
    rows: List[ComparisonRow] = []
    for heuristic in heuristics:
        engine = Engine(problem, heuristic, rng=random.Random(seed))
        result = engine.run()
        pruned, _ = prune_schedule(problem, result.schedule)
        fairness = account_schedule(problem, result.schedule)
        streaming = streaming_report(problem, result.schedule, rate=playback_rate)
        rows.append(
            ComparisonRow(
                heuristic=heuristic.name,
                success=result.success,
                makespan=result.makespan,
                bandwidth=result.bandwidth,
                pruned_bandwidth=pruned.bandwidth,
                makespan_gap=result.makespan / bound_ts,
                bandwidth_gap=pruned.bandwidth / bound_bw,
                upload_jain=fairness.upload_jain,
                redundancy=fairness.redundancy,
                mean_startup_delay=streaming.mean_startup_delay,
            )
        )
    return rows
