"""Streaming (per-object latency) analysis of schedules.

The paper's introduction lists *per-object latency* among content
distribution goals its makespan/bandwidth evaluation does not cover.
This module analyzes any schedule through a streaming lens: tokens are
media pieces consumed **in index order** at a fixed playback rate, and
the quantity of interest is how early each receiver can safely start.

For a receiver whose token ``t`` first arrives at step ``a_t``, playback
starting at step ``s`` with rate ``r`` tokens/step consumes token ``t``
during step ``s + ceil((t+1)/r)``; it never stalls iff
``a_t <= s + floor(t/r)`` for every wanted ``t``.  The minimal safe
start is therefore ``max_t (a_t - floor(t/r))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.problem import Problem
from repro.core.schedule import Schedule

__all__ = ["StreamingReport", "arrival_times", "playback_delays", "streaming_report"]


def arrival_times(
    problem: Problem, schedule: Schedule
) -> List[Dict[int, int]]:
    """Per vertex: first possession step of each token it ever holds."""
    history = schedule.replay(problem)
    arrivals: List[Dict[int, int]] = [dict() for _ in range(problem.num_vertices)]
    for step, possession in enumerate(history):
        for v in range(problem.num_vertices):
            for token in possession[v]:
                arrivals[v].setdefault(token, step)
    return arrivals


def playback_delays(
    problem: Problem,
    schedule: Schedule,
    rate: int = 1,
) -> List[Optional[int]]:
    """Minimal safe playback start per vertex (``None`` if its want is
    never fully delivered; 0 for vertices wanting nothing).

    Only *wanted* tokens gate playback; the indices used for ordering
    are each vertex's wanted tokens in increasing token id, i.e. token
    ids define the stream order.
    """
    if rate < 1:
        raise ValueError(f"rate must be >= 1, got {rate}")
    arrivals = arrival_times(problem, schedule)
    delays: List[Optional[int]] = []
    for v in range(problem.num_vertices):
        wanted = sorted(problem.want[v])
        if not wanted:
            delays.append(0)
            continue
        start = 0
        complete = True
        for position, token in enumerate(wanted):
            arrived = arrivals[v].get(token)
            if arrived is None:
                complete = False
                break
            start = max(start, arrived - position // rate)
        delays.append(start if complete else None)
    return delays


@dataclass(frozen=True)
class StreamingReport:
    """Aggregate streaming quality of one schedule."""

    mean_startup_delay: float
    max_startup_delay: int
    receivers: int
    incomplete: int

    def all_complete(self) -> bool:
        return self.incomplete == 0


def streaming_report(
    problem: Problem, schedule: Schedule, rate: int = 1
) -> StreamingReport:
    """Summarize startup delays over all vertices with non-empty wants."""
    delays = playback_delays(problem, schedule, rate=rate)
    relevant = [
        delays[v] for v in range(problem.num_vertices) if problem.want[v]
    ]
    finite = [d for d in relevant if d is not None]
    return StreamingReport(
        mean_startup_delay=sum(finite) / len(finite) if finite else 0.0,
        max_startup_delay=max(finite) if finite else 0,
        receivers=len(relevant),
        incomplete=sum(1 for d in relevant if d is None),
    )
