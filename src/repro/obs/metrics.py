"""Counters, gauges, histograms, and phase timers for profiling runs.

A :class:`MetricsRegistry` is an explicit, injectable bag of named
instruments — no process-global state, so two concurrent profiled runs
cannot contaminate each other and tests can assert on exactly what one
run recorded.

The model packages themselves may not consult wall-clock time (ocdlint
OCD004 enforces this: the simulation is synchronous, timesteps are
integers).  All timing therefore lives *here*, behind the
:meth:`MetricsRegistry.timer` context manager: an engine writes

.. code-block:: python

    if metrics is not None:
        with metrics.timer("heuristic_select"):
            proposal = heuristic.propose(ctx)
    else:
        proposal = heuristic.propose(ctx)

so the unprofiled path never touches a clock and the profiled path
attributes wall time to named phases.  The standard phase names used by
the engines are ``heuristic_select`` (proposal construction),
``kernel_apply`` (validation + possession update), and
``knowledge_flood`` (LOCD gossip merge).

Timings are wall-clock and therefore nondeterministic; they belong in
``--profile`` summaries and must never be written into run traces,
which are byte-identical across identical seeds by contract.

Registries *compose*: :meth:`MetricsRegistry.snapshot` round-trips
through :meth:`MetricsRegistry.from_snapshot`, and
:meth:`MetricsRegistry.merge` folds one registry into another — which is
how the sweep executor aggregates per-worker phase timers into one
sweep-level profile (worker processes snapshot, the parent merges).

Like the tracer, a registry can be made *ambient*
(:func:`metrics_active` / :func:`current_metrics`) so engines
constructed deep inside a point function are profiled without threading
a registry through every driver signature.  The default ambient value
is ``None`` — the unprofiled path stays clock-free.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "current_metrics",
    "metrics_active",
]


class Counter:
    """A monotone event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A last-write-wins level (e.g. the current total deficit)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values: count/sum/min/max.

    Deliberately bucketless — the per-timestep distributions worth
    plotting live in the trace events; this is for profile summaries.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class PhaseTimer:
    """Accumulated wall time and entry count for one named phase."""

    __slots__ = ("name", "calls", "seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds


class MetricsRegistry:
    """Named instruments plus the phase timers of one profiled run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, PhaseTimer] = {}

    # -- instrument access (get-or-create, stable identity) -------------
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    def phase(self, name: str) -> PhaseTimer:
        inst = self._timers.get(name)
        if inst is None:
            inst = self._timers[name] = PhaseTimer(name)
        return inst

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Attribute the block's wall time to phase ``name``."""
        phase = self.phase(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            phase.add(time.perf_counter() - started)

    # -- composition -----------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry, in place.

        Counters and phase timers add; histograms combine their
        count/sum/min/max summaries; gauges are last-write-wins (the
        merged-in registry's level replaces ours, matching
        :meth:`Gauge.set` semantics).  Returns ``self`` so sweeps can
        chain ``profile.merge(worker_a).merge(worker_b)``.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other._histograms.items():
            mine = self.histogram(name)
            mine.count += hist.count
            mine.total += hist.total
            if hist.count:
                mine.min = min(mine.min, hist.min)
                mine.max = max(mine.max, hist.max)
        for name, phase in other._timers.items():
            mine_phase = self.phase(name)
            mine_phase.calls += phase.calls
            mine_phase.seconds += phase.seconds
        return self

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict.

        ``from_snapshot(r.snapshot()).snapshot() == r.snapshot()`` —
        the round trip is exact, which is what lets worker processes
        ship their profiles to the parent as plain JSON.
        """
        registry = cls()
        for name, value in snap.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, value in snap.get("gauges", {}).items():
            registry.gauge(name).set(float(value))
        for name, fields in snap.get("histograms", {}).items():
            hist = registry.histogram(name)
            hist.count = int(fields.get("count", 0))
            hist.total = float(fields.get("sum", 0.0))
            if hist.count:
                hist.min = float(fields["min"])
                hist.max = float(fields["max"])
        for name, fields in snap.get("phases", {}).items():
            phase = registry.phase(name)
            phase.calls = int(fields.get("calls", 0))
            phase.seconds = float(fields.get("seconds", 0.0))
        return registry

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view of everything recorded so far."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean,
                }
                for n, h in sorted(self._histograms.items())
            },
            "phases": {
                n: {"calls": t.calls, "seconds": t.seconds}
                for n, t in sorted(self._timers.items())
            },
        }

    def render(self) -> str:
        """The ``--profile`` summary: phases ranked by time, then stats."""
        lines: List[str] = []
        if self._timers:
            lines.append("phase               calls      total      per-call")
            total = sum(t.seconds for t in self._timers.values())
            by_time = sorted(
                self._timers.values(), key=lambda t: (-t.seconds, t.name)
            )
            for t in by_time:
                share = f" ({t.seconds / total:5.1%})" if total > 0 else ""
                per_call = t.seconds / t.calls if t.calls else 0.0
                lines.append(
                    f"{t.name:<18} {t.calls:>6} {t.seconds:>9.4f}s "
                    f"{per_call * 1e6:>9.1f}us{share}"
                )
        for name, c in sorted(self._counters.items()):
            lines.append(f"counter {name} = {c.value}")
        for name, g in sorted(self._gauges.items()):
            lines.append(f"gauge {name} = {g.value:g}")
        for name, h in sorted(self._histograms.items()):
            if h.count:
                lines.append(
                    f"hist {name}: n={h.count} mean={h.mean:g} "
                    f"min={h.min:g} max={h.max:g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


# ----------------------------------------------------------------------
# Ambient metrics (mirrors the ambient tracer in repro.obs.tracer)
# ----------------------------------------------------------------------
_ambient_metrics: Optional[MetricsRegistry] = None


def current_metrics() -> Optional[MetricsRegistry]:
    """The ambient registry engines resolve at construction time.

    ``None`` unless inside a :func:`metrics_active` block — the default
    path never touches a clock, keeping OCD004's synchronous-model
    contract intact for unprofiled runs.
    """
    return _ambient_metrics


@contextmanager
def metrics_active(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` ambient for the duration of the block.

    Every engine constructed inside the block without an explicit
    ``metrics=`` argument records its phase timers here.  Not
    thread-safe by design, exactly like the ambient tracer: the sweep
    executor parallelises with *processes*, and each worker activates
    its own registry, snapshots it, and ships the snapshot home.
    """
    global _ambient_metrics
    previous = _ambient_metrics
    _ambient_metrics = registry  # ocd: ignore[OCD014] -- each worker process activates its own ambient registry; snapshots travel back explicitly
    try:
        yield registry
    finally:
        _ambient_metrics = previous  # ocd: ignore[OCD014] -- restores the worker-local ambient on exit
