"""One-shot upgrade of pre-schema telemetry JSONL to the event schema.

Before the observability layer, the sweep executor wrote one bare JSON
object per point (``figure``/``kind``/``index``/``wall_s``/…) with no
schema envelope.  Those files stay readable: :func:`convert_telemetry`
rewrites them as ``sweep_point`` events under the current
``schema_version``, leaving records that already carry the envelope
untouched — so the converter is idempotent and safe to run on mixed
files.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Tuple

from repro.obs.events import dump_event, is_event, make_event

__all__ = ["convert_telemetry", "upgrade_record"]

#: Fields every legacy executor telemetry row carried; used to recognise
#: legacy rows so arbitrary JSONL is rejected instead of mislabeled.
_LEGACY_REQUIRED = frozenset({"figure", "kind", "index", "ok"})


def upgrade_record(obj: Dict[str, Any]) -> Dict[str, Any]:
    """One record, upgraded: envelope added to legacy rows, events kept.

    Raises ``ValueError`` for records that are neither schema events nor
    recognisable legacy telemetry rows.
    """
    if is_event(obj):
        return obj
    if _LEGACY_REQUIRED <= set(obj):
        return make_event("sweep_point", obj)
    raise ValueError(
        f"record is neither a schema event nor a legacy telemetry row "
        f"(fields: {', '.join(sorted(obj)) or 'none'})"
    )


def convert_telemetry(src: str, dst: str) -> Tuple[int, int]:
    """Rewrite ``src`` JSONL into ``dst`` under the event schema.

    Returns ``(total, upgraded)`` record counts.  ``dst`` must differ
    from ``src`` — the converter never rewrites in place.
    """
    # Resolve both paths: "./x.jsonl" vs "x.jsonl" (or a symlink) name the
    # same file, and opening it for writing would truncate the input.
    if os.path.realpath(src) == os.path.realpath(dst):
        raise ValueError("refusing to convert in place; pass a distinct output path")
    total = 0
    upgraded = 0
    with open(src, encoding="utf-8") as inp, open(
        dst, "w", encoding="utf-8"
    ) as out:
        for lineno, line in enumerate(inp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                # The converter's whole purpose is parsing *pre-schema*
                # lines the canonical readers rightly refuse.
                obj = json.loads(line)  # ocd: ignore[OCD016] -- legacy upgrade path
            except ValueError as exc:
                raise ValueError(f"{src}:{lineno}: not JSON: {exc}") from None
            if not isinstance(obj, dict):
                raise ValueError(f"{src}:{lineno}: expected a JSON object")
            was_event = is_event(obj)
            try:
                event = upgrade_record(obj)
            except ValueError as exc:
                raise ValueError(f"{src}:{lineno}: {exc}") from None
            out.write(dump_event(event) + "\n")
            total += 1
            upgraded += 0 if was_event else 1
    return total, upgraded
