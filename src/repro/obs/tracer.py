"""Tracer protocol, the zero-overhead null default, and trace sinks.

The engines accept any object satisfying :class:`Tracer`.  The contract
that keeps the kernel's speed (the committed ``BENCH_engine.json``
baselines) intact is the ``enabled`` attribute: every engine hoists it
into a local before its step loop and builds *no event payloads at all*
when it is false.  :data:`NULL_TRACER` — the default everywhere — is
permanently disabled, so an untraced run pays one attribute read per
run, not per step.

Sinks:

* :class:`NullTracer` — disabled; the default.  Emit is a no-op even if
  called directly.
* :class:`RecordingTracer` — enabled; collects events in memory.  Used
  by tests and the overhead benchmark.
* :class:`JsonlTracer` — enabled; streams events through the canonical
  :class:`repro.obs.events.EventWriter`, so traces from identical seeds
  are byte-identical.

Engines resolve their tracer at construction time from the *ambient*
tracer (:func:`current_tracer`, set with :func:`activated`) unless one
is passed explicitly.  The ambient mechanism is what lets the sweep
executor trace runs deep inside point functions — including in worker
processes — without threading a tracer through every driver signature.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Protocol, TextIO

from repro.obs.events import EventWriter, make_event

__all__ = [
    "JsonlTracer",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "Tracer",
    "activated",
    "current_tracer",
]


class Tracer(Protocol):
    """What the engines require of a trace sink."""

    #: Engines hoist this before their step loop; when false they build
    #: no event payloads at all.
    enabled: bool

    def emit(self, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (see :mod:`repro.obs.events` for kinds)."""


class NullTracer:
    """The disabled tracer: one shared instance, no per-step cost."""

    enabled: bool = False

    def emit(self, kind: str, fields: Mapping[str, Any]) -> None:
        """Discard the event (engines never call this when disabled)."""

    def __repr__(self) -> str:
        return "<NullTracer>"


#: The process-wide disabled tracer; engines default to it.
NULL_TRACER = NullTracer()


class _RunCountingTracer:
    """Shared base: stamps every event with a ``run`` index.

    Engines do not know how many runs share one trace file (a sweep
    point traces every heuristic of a trial into the same sink), so the
    sink assigns the index: it increments on each ``run_start`` and
    stamps the current value on every run-scoped event.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._run = -1

    def emit(self, kind: str, fields: Mapping[str, Any]) -> None:
        if kind == "run_start":
            self._run += 1
        stamped: Dict[str, Any] = dict(fields)
        if kind != "trace_header":
            stamped["run"] = self._run
        self._write(make_event(kind, stamped))

    def _write(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError


class RecordingTracer(_RunCountingTracer):
    """Enabled tracer that collects events in memory (tests, benches)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Dict[str, Any]] = []

    def _write(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """The recorded events of one kind, in emission order."""
        return [e for e in self.events if e["event"] == kind]


class JsonlTracer(_RunCountingTracer):
    """Enabled tracer streaming canonical JSONL to a file or handle.

    Constructed with a path it owns the handle (use :meth:`close` or the
    context-manager form); constructed with an open handle it only
    writes.  Identical seeds produce byte-identical files because events
    carry no wall-clock or process-identity fields and serialization is
    canonical.
    """

    def __init__(
        self, path: Optional[str] = None, handle: Optional[TextIO] = None
    ) -> None:
        super().__init__()
        if (path is None) == (handle is None):
            raise ValueError("pass exactly one of path or handle")
        self._owned = None
        if path is not None:
            self._owned = open(path, "w", encoding="utf-8")
            handle = self._owned
        assert handle is not None
        self._writer = EventWriter(handle)

    def _write(self, event: Dict[str, Any]) -> None:
        self._writer.write(event)

    def close(self) -> None:
        self._writer.flush()
        if self._owned is not None:
            self._owned.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Ambient tracer
# ----------------------------------------------------------------------
_ambient: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The ambient tracer engines resolve at construction time.

    :data:`NULL_TRACER` unless inside an :func:`activated` block — one
    lookup per *run*, never per step, so the default costs nothing.
    """
    return _ambient


@contextmanager
def activated(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` ambient for the duration of the block.

    Every engine constructed inside the block (including transitively,
    e.g. by a figure point function) records into it.  Not thread-safe
    by design: the sweep executor parallelises with *processes*, and
    each worker activates its own tracer.
    """
    global _ambient
    previous = _ambient
    _ambient = tracer  # ocd: ignore[OCD014] -- each worker process activates its own ambient tracer; nothing syncs back
    try:
        yield tracer
    finally:
        _ambient = previous  # ocd: ignore[OCD014] -- restores the worker-local ambient on exit
