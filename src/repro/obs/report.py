"""Human-readable timelines from run traces (``ocd-repro report``).

The renderer consumes the event stream of one trace file (see
:mod:`repro.obs.events`) and produces, per recorded run, the things the
paper reasons about but end-of-run aggregates hide:

* the **convergence curve** — remaining total deficit per timestep, as a
  downsampled ASCII chart;
* **stall spans** — maximal runs of consecutive timesteps in which no
  vertex gained a wanted-or-not token (onset and length, the §4 local
  knowledge pathology);
* **dissemination phases** — the ramp-up / bulk / tail split of
  Mundinger-style analyses, derived from the gain curve: ramp-up until
  the per-step gain first reaches half its peak, tail after the deficit
  falls below 10% of its initial value, bulk in between;
* **arc utilization** — mean and peak fraction of arcs carrying sends.

Everything here is pure string building over parsed events; rendering a
trace never touches the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import read_events

__all__ = ["RunTimeline", "load_timelines", "render_report", "render_trace_file"]

_BAR = "█"
_CHART_WIDTH = 40
_MAX_CURVE_ROWS = 16


@dataclass
class RunTimeline:
    """The parsed events of one run within a trace."""

    run: int
    start: Dict[str, Any]
    steps: List[Dict[str, Any]] = field(default_factory=list)
    stalls: List[Dict[str, Any]] = field(default_factory=list)
    end: Optional[Dict[str, Any]] = None

    @property
    def heuristic(self) -> str:
        return str(self.start.get("heuristic", "?"))

    @property
    def initial_deficit(self) -> int:
        return int(self.start.get("total_deficit", 0))

    def deficit_curve(self) -> List[Tuple[int, int]]:
        """``(step, remaining deficit)`` per traced timestep."""
        return [(int(s["step"]), int(s["deficit"])) for s in self.steps]

    def stall_spans(self) -> List[Tuple[int, int]]:
        """Maximal ``[first, last]`` spans of zero-gain timesteps."""
        spans: List[Tuple[int, int]] = []
        for s in self.steps:
            if int(s.get("gained", 0)) > 0:
                continue
            step = int(s["step"])
            if spans and spans[-1][1] == step - 1:
                spans[-1] = (spans[-1][0], step)
            else:
                spans.append((step, step))
        return spans

    def phases(self) -> List[Tuple[str, int, int, int]]:
        """``(name, first_step, last_step, tokens_gained)`` per phase."""
        gains = [int(s.get("gained", 0)) for s in self.steps]
        if not gains:
            return []
        peak = max(gains)
        ramp_end = 0
        for i, g in enumerate(gains):
            if peak > 0 and g * 2 >= peak:
                ramp_end = i
                break
        initial = self.initial_deficit
        tail_start = len(gains)
        for i, s in enumerate(self.steps):
            if initial > 0 and int(s["deficit"]) * 10 <= initial:
                tail_start = i
                break
        tail_start = max(tail_start, ramp_end + 1)
        bounds = [
            ("ramp-up", 0, ramp_end),
            ("bulk", ramp_end + 1, tail_start - 1),
            ("tail", tail_start, len(gains) - 1),
        ]
        out: List[Tuple[str, int, int, int]] = []
        for name, lo, hi in bounds:
            if lo > hi:
                continue
            out.append((name, lo, hi, sum(gains[lo : hi + 1])))
        return out

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able view for ``report --format json`` consumers."""
        utils = [float(s.get("arc_util", 0.0)) for s in self.steps]
        end = self.end
        return {
            "run": self.run,
            "heuristic": self.heuristic,
            "engine": str(self.start.get("engine", "?")),
            "problem": str(self.start.get("problem", "?")),
            "initial_deficit": self.initial_deficit,
            "end": {
                "success": bool(end.get("success")),
                "makespan": end.get("makespan"),
                "bandwidth": end.get("bandwidth"),
            }
            if end is not None
            else None,
            "deficit_curve": [list(p) for p in self.deficit_curve()],
            "stall_spans": [list(s) for s in self.stall_spans()],
            "phases": [
                {"name": name, "first": lo, "last": hi, "gained": gain}
                for name, lo, hi, gain in self.phases()
            ],
            "arc_util": {
                "mean": sum(utils) / len(utils),
                "peak": max(utils),
            }
            if utils
            else None,
        }


def load_timelines(events: Sequence[Dict[str, Any]]) -> List[RunTimeline]:
    """Group a trace's events into per-run timelines."""
    runs: Dict[int, RunTimeline] = {}
    for event in events:
        kind = event["event"]
        if kind not in ("run_start", "step", "stall", "run_end"):
            # trace_header, sweep_point telemetry, and run-ledger kinds
            # (sweep_start/point_*/sweep_end) carry no run dynamics.
            continue
        run = int(event.get("run", 0))
        if kind == "run_start":
            runs[run] = RunTimeline(run=run, start=event)
            continue
        timeline = runs.get(run)
        if timeline is None:
            timeline = runs[run] = RunTimeline(run=run, start={})
        if kind == "step":
            timeline.steps.append(event)
        elif kind == "stall":
            timeline.stalls.append(event)
        elif kind == "run_end":
            timeline.end = event
    return [runs[k] for k in sorted(runs)]


def _downsample(curve: Sequence[Tuple[int, int]], rows: int) -> List[Tuple[int, int]]:
    if len(curve) <= rows:
        return list(curve)
    picked = [curve[(i * (len(curve) - 1)) // (rows - 1)] for i in range(rows)]
    out: List[Tuple[int, int]] = []
    for point in picked:
        if not out or out[-1] != point:
            out.append(point)
    return out


def _render_curve(timeline: RunTimeline, lines: List[str]) -> None:
    curve = timeline.deficit_curve()
    if not curve:
        lines.append("  (no step events)")
        return
    top = max(timeline.initial_deficit, max(d for _, d in curve), 1)
    lines.append(f"  convergence (deficit, initial {timeline.initial_deficit}):")
    for step, deficit in _downsample(curve, _MAX_CURVE_ROWS):
        bar = _BAR * round(deficit / top * _CHART_WIDTH)
        lines.append(f"    t={step:<5} {deficit:>6} |{bar}")


def render_report(
    events: Sequence[Dict[str, Any]], title: str = ""
) -> str:
    """Render every run in an event stream as a text timeline."""
    lines: List[str] = []
    header = next((e for e in events if e["event"] == "trace_header"), None)
    if title:
        lines.append(f"=== trace report: {title} ===")
    if header is not None:
        meta = {
            k: v
            for k, v in sorted(header.items())
            if k not in ("event", "schema_version")
        }
        lines.append(
            "scenario: " + ", ".join(f"{k}={v}" for k, v in meta.items())
        )
    timelines = load_timelines(events)
    if not timelines:
        lines.append("(no runs in trace)")
        return "\n".join(lines) + "\n"
    for timeline in timelines:
        _render_run(timeline, lines)
    return "\n".join(lines) + "\n"


def _render_run(timeline: RunTimeline, lines: List[str]) -> None:
    start, end = timeline.start, timeline.end
    lines.append("")
    engine = start.get("engine", "?")
    lines.append(
        f"--- run {timeline.run}: {timeline.heuristic} "
        f"on {start.get('problem', '?')} [{engine}] ---"
    )
    if end is not None:
        outcome = "success" if end.get("success") else "FAILED"
        extras = ""
        if int(end.get("knowledge_cost", 0)):
            extras = f", knowledge_cost={end['knowledge_cost']}"
        lines.append(
            f"  {outcome}: makespan={end.get('makespan')} "
            f"bandwidth={end.get('bandwidth')}{extras}"
        )
    else:
        lines.append("  (trace truncated: no run_end event)")
    _render_curve(timeline, lines)
    spans = timeline.stall_spans()
    if spans:
        rendered = ", ".join(
            f"[{lo}..{hi}] ({hi - lo + 1} steps)" for lo, hi in spans
        )
        lines.append(f"  stall spans ({len(spans)}): {rendered}")
    else:
        lines.append("  stall spans: none")
    phases = timeline.phases()
    if phases:
        total_gain = sum(g for _, _, _, g in phases) or 1
        parts = ", ".join(
            f"{name} t[{lo}..{hi}] {gain / total_gain:.0%} of gains"
            for name, lo, hi, gain in phases
        )
        lines.append(f"  phases: {parts}")
    utils = [float(s.get("arc_util", 0.0)) for s in timeline.steps]
    if utils:
        lines.append(
            f"  arc utilization: mean {sum(utils) / len(utils):.1%}, "
            f"peak {max(utils):.1%}"
        )


def render_trace_file(path: str) -> str:
    """Load a trace JSONL file and render its report."""
    return render_report(read_events(path), title=path)
