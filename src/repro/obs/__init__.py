"""``repro.obs`` — run traces, metrics, profiling, and library logging.

The observability layer for every simulation loop in the repository
(see ``docs/OBSERVABILITY.md`` for the guide):

* :class:`Tracer` / :class:`NullTracer` / :class:`JsonlTracer` /
  :class:`RecordingTracer` — per-timestep run tracing with a
  zero-overhead disabled default (:data:`NULL_TRACER`); engines resolve
  the ambient tracer (:func:`current_tracer`, :func:`activated`) unless
  given one explicitly.
* :mod:`repro.obs.events` — the versioned JSONL event schema shared by
  run traces and sweep telemetry (:data:`SCHEMA_VERSION`,
  :func:`make_event`, :class:`EventWriter`, :func:`read_events`).
* :class:`MetricsRegistry` — counters/gauges/histograms plus the
  engines' phase timers (``heuristic_select``, ``kernel_apply``,
  ``knowledge_flood``) behind ``--profile``.
* :func:`get_logger` — library logging instead of ``print()``
  (enforced by ocdlint OCD007).
* :func:`render_trace_file` / :func:`render_report` — the
  ``ocd-repro report`` timeline renderer.
* :func:`convert_telemetry` — one-shot upgrade of pre-schema sweep
  telemetry files.
"""

from repro.obs.convert import convert_telemetry, upgrade_record
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    EventSchema,
    EventWriter,
    dump_event,
    is_event,
    iter_events,
    make_event,
    read_events,
    read_events_tail,
    validate_event,
)
from repro.obs.log import enable_console_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    current_metrics,
    metrics_active,
)
from repro.obs.report import (
    RunTimeline,
    load_timelines,
    render_report,
    render_trace_file,
)
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    activated,
    current_tracer,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "EVENT_SCHEMAS",
    "EventSchema",
    "EventWriter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PhaseTimer",
    "RecordingTracer",
    "RunTimeline",
    "SCHEMA_VERSION",
    "Tracer",
    "activated",
    "convert_telemetry",
    "current_metrics",
    "current_tracer",
    "dump_event",
    "enable_console_logging",
    "get_logger",
    "is_event",
    "iter_events",
    "load_timelines",
    "make_event",
    "metrics_active",
    "read_events",
    "read_events_tail",
    "render_report",
    "render_trace_file",
    "upgrade_record",
    "validate_event",
]
