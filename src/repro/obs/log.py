"""Library logging for ``repro``: the alternative to ``print()``.

ocdlint OCD007 forbids bare ``print()`` in library code — printed output
cannot be captured, silenced, or correlated with a run.  Library modules
instead write

.. code-block:: python

    from repro.obs import get_logger

    log = get_logger(__name__)
    log.info("sweep %s: %d points", figure, len(points))

Loggers live under the ``repro`` namespace with a ``NullHandler``
attached to the root, so importing the library never configures global
logging (the stdlib contract for libraries).  CLIs that want the output
call :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["enable_console_logging", "get_logger"]

_ROOT_NAME = "repro"

_root = logging.getLogger(_ROOT_NAME)
if not _root.handlers:
    _root.addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """The library logger for a module (``get_logger(__name__)``)."""
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(
    level: int = logging.INFO, stream: Optional[TextIO] = None
) -> logging.Handler:
    """Attach a console handler to the ``repro`` root (CLI entry points).

    Returns the handler so callers can detach it (tests do).
    """
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
    root = logging.getLogger(_ROOT_NAME)
    root.addHandler(handler)
    root.setLevel(level)
    return handler
