"""The ``ocd-repro watch`` dashboard: render a sweep's ledger live.

:func:`render_dashboard` is a pure function from a :class:`LedgerState`
snapshot (plus the anomalies found so far) to the dashboard text, so
tests assert on exact output; :func:`watch` is the polling loop around
it.  All output goes to an injected stream — the CLI passes
``sys.stdout``, tests pass a buffer — and the clock and sleep functions
are injectable for deterministic tests.

Exit semantics (surfaced as :attr:`WatchResult.exit_code`):

* ``0`` — sweep healthy (or still running in ``--once`` mode).
* ``1`` — the sweep finished with failed points (or ``sweep_end``
  reports ``ok: false``).
* ``2`` — ``fail_on_anomaly`` was set and the incremental trace scan
  found at least one anomaly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, TextIO

from repro.obs.analyze.anomaly import Anomaly, ScanThresholds
from repro.obs.events import read_events_tail
from repro.obs.live.incremental import IncrementalScanner
from repro.obs.live.ledger import LedgerState, PointState

__all__ = ["WatchResult", "render_dashboard", "watch"]


@dataclass
class WatchResult:
    """What one watch session established by the time it returned."""

    state: LedgerState
    anomalies: List[Anomaly] = field(default_factory=list)
    polls: int = 0
    #: Whether the ledger reached ``sweep_end`` while watching.
    finished: bool = False
    fail_on_anomaly: bool = False

    @property
    def exit_code(self) -> int:
        if self.fail_on_anomaly and self.anomalies:
            return 2
        counts = self.state.counts()
        end = self.state.end
        if counts["failed"] or (end is not None and not end.get("ok")):
            return 1
        return 0


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _point_label(point: PointState) -> str:
    label = f"{point.figure}/{point.kind}[{point.index}]"
    if point.attempt:
        label += f" attempt {point.attempt}"
    return label


def render_dashboard(
    state: LedgerState,
    anomalies: Sequence[Anomaly] = (),
    now: float = 0.0,
) -> str:
    """The dashboard text for one snapshot (no trailing newline)."""
    lines: List[str] = []
    counts = state.counts()
    figure = state.start["figure"] if state.start else "?"
    expected = state.expected_points
    total = str(expected) if expected is not None else "?"
    status = "finished" if state.end is not None else "running"
    head = (
        f"sweep {figure} [{status}]: {counts['done']}/{total} done, "
        f"{counts['failed']} failed, {counts['running']} in flight"
    )
    rate = state.throughput(now)
    parts = [f"elapsed {_fmt_s(state.elapsed_s(now))}"]
    if rate is not None:
        parts.append(f"{rate:.2f} pt/s")
    if state.end is None:
        parts.append(f"eta {_fmt_s(state.eta_s(now))}")
    lines.append(f"{head}   ({', '.join(parts)})")

    running = state.by_status("running")
    if running:
        lines.append("in flight:")
        for point in running:
            since = (
                _fmt_s(now - point.started_unix)
                if point.started_unix is not None
                else "?"
            )
            beat = (
                f", heartbeat at {_fmt_s(point.heartbeat_elapsed_s)}"
                if point.heartbeat_elapsed_s is not None
                else ""
            )
            rss = f", rss {point.maxrss_kb}kB" if point.maxrss_kb else ""
            lines.append(
                f"  {_point_label(point)} on worker {point.worker}: "
                f"{since} elapsed{beat}{rss}"
            )

    slowest = state.slowest(now)
    if slowest:
        lines.append("slowest:")
        for elapsed, point in slowest:
            tag = point.status if point.status != "running" else "in flight"
            lines.append(f"  {_point_label(point)}: {_fmt_s(elapsed)} ({tag})")

    stale = state.stale(now)
    if stale:
        lines.append("stale (heartbeat overdue):")
        for point in stale:
            lines.append(f"  {_point_label(point)} on worker {point.worker}")

    failed = state.by_status("failed")
    if failed:
        lines.append("failed:")
        for point in failed:
            error = f": {point.error}" if point.error else ""
            lines.append(f"  {_point_label(point)}{error}")

    if anomalies:
        lines.append(f"anomalies ({len(anomalies)}):")
        for anomaly in anomalies:
            lines.append(f"  {anomaly.render()}")
    elif state.end is not None:
        lines.append("anomalies: none")
    return "\n".join(lines)


def watch(
    ledger_path: str,
    trace_paths: Sequence[str] = (),
    stream: Optional[TextIO] = None,
    once: bool = False,
    interval: float = 1.0,
    fail_on_anomaly: bool = False,
    thresholds: ScanThresholds = ScanThresholds(),
    max_polls: Optional[int] = None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
) -> WatchResult:
    """Follow a sweep's ledger (and optionally its traces) to completion.

    Each poll folds newly appended ledger events into the state, runs
    the incremental anomaly scan over ``trace_paths``, and renders the
    dashboard to ``stream``.  The loop ends when the ledger shows
    ``sweep_end`` (the scan then finalizes, so anomaly verdicts equal a
    post-hoc run), after the first render with ``once=True``, or after
    ``max_polls`` polls.  ``once`` against an already-finished ledger
    still finalizes — that is the CI snapshot mode.
    """
    state = LedgerState()
    scanner = IncrementalScanner(trace_paths, thresholds=thresholds)
    result = WatchResult(
        state=state, anomalies=scanner.findings, fail_on_anomaly=fail_on_anomaly
    )
    offset = 0
    while True:
        events, offset = read_events_tail(ledger_path, start=offset)
        state.apply_all(events)
        scanner.poll()
        result.polls += 1
        if state.end is not None and not result.finished:
            result.finished = True
            if trace_paths:
                scanner.finalize()
        if stream is not None:
            if not once and result.polls > 1:
                stream.write("\n")
            stream.write(render_dashboard(state, scanner.findings, now=clock()))
            stream.write("\n")
            stream.flush()
        if once or result.finished:
            return result
        if max_polls is not None and result.polls >= max_polls:
            return result
        sleep(interval)
