"""``repro.obs.live`` — the run ledger and streaming sweep analytics.

Everything in :mod:`repro.obs` up to here is *post-hoc*: report, diff,
verify, and scan all read a finished trace.  This package is the
operational layer for sweeps still in flight:

* :class:`LedgerWriter` — the executor's append-only JSONL status
  stream (``sweep_start`` / ``point_start`` / ``point_heartbeat`` /
  ``point_end`` / ``sweep_end``).  One ``write()`` call per event and
  POSIX ``O_APPEND`` semantics keep concurrent worker appends intact
  without locks.
* :class:`LedgerState` — a pure reducer from ledger events to the
  current sweep picture: points done/failed/in-flight, throughput,
  ETA, slowest points, stale workers.  Retried points supersede their
  stale events by ``attempt`` index.
* :class:`TraceFollower` — byte-offset tail-following over a growing
  set of JSONL files (built on :func:`repro.obs.events.read_events_tail`).
* :class:`IncrementalScanner` / :class:`IncrementalValidator` —
  streaming variants of ``trace-scan`` and ``trace-verify`` that check
  runs as trace files grow, suppressing open-tail false positives until
  :meth:`finalize`, at which point their verdicts equal a post-hoc run.
* :func:`render_dashboard` / :func:`watch` — the ``ocd-repro watch``
  terminal dashboard (injected stream; ``once=True`` for CI snapshots).

The determinism contract is unchanged: wall-clock and resource fields
live only in the ledger, never in trace files, which stay byte-identical
with monitoring on or off.
"""

from repro.obs.live.follow import TraceFollower
from repro.obs.live.incremental import IncrementalScanner, IncrementalValidator
from repro.obs.live.ledger import LedgerState, LedgerWriter, PointState
from repro.obs.live.watch import WatchResult, render_dashboard, watch

__all__ = [
    "IncrementalScanner",
    "IncrementalValidator",
    "LedgerState",
    "LedgerWriter",
    "PointState",
    "TraceFollower",
    "WatchResult",
    "render_dashboard",
    "watch",
]
