"""The run ledger: durable sweep status stream and its state reducer.

The ledger is an append-only JSONL file next to a sweep's outputs.  The
parent executor writes ``sweep_start`` / ``sweep_end`` (and ``point_end``
rows for cache hits); each worker process appends ``point_start``,
periodic ``point_heartbeat``, and ``point_end`` for the points it
computes.  Every record is one :func:`repro.obs.events.dump_event` line
written with a single ``write()`` call on a handle opened in append
mode, so POSIX ``O_APPEND`` atomicity keeps concurrent appends from
many processes intact without any locking.

Because a hard-killed worker simply stops appending, the ledger is
honest by construction: a point with a ``point_start`` but no
``point_end`` and a stale last heartbeat *is* the signal that something
wedged — exactly what :class:`LedgerState` surfaces and ``ocd-repro
watch`` renders.

:class:`LedgerState` is a pure fold over ledger events (no I/O, no
clock) so tests can drive it from literal event lists; the only
wall-clock input is the explicit ``now`` argument of the derived views.
Retried points supersede their stale events by ``attempt`` index: a
``point_start`` with a higher attempt replaces the failed attempt's
state, and events from a lower attempt than the one already seen are
ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, TextIO, Tuple

from repro.obs.events import dump_event, is_event, read_events_tail

__all__ = ["LedgerWriter", "LedgerState", "PointState"]

JsonDict = Dict[str, Any]

#: Ledger event kinds, for filtering mixed streams.
LEDGER_KINDS = (
    "sweep_start",
    "point_start",
    "point_heartbeat",
    "point_end",
    "sweep_end",
)


class LedgerWriter:
    """Append-only ledger handle: one atomic line per event.

    Safe to construct independently in every worker process — append
    mode plus single-``write()`` lines is the whole concurrency story.
    The writer never buffers: each event is flushed immediately so a
    follower sees it on the next poll and a crash loses at most the
    line being written (which :func:`read_events_tail` tolerates).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[TextIO] = open(path, "a", encoding="utf-8")

    def write(self, event: Mapping[str, Any]) -> None:
        """Append one schema-stamped event (build it with ``make_event``)."""
        if not is_event(event):
            raise ValueError(
                "refusing to write a record without the schema envelope; "
                "build it with repro.obs.make_event"
            )
        if self._handle is None:
            raise ValueError(f"ledger {self.path} is closed")
        self._handle.write(dump_event(event) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class PointState:
    """The latest known state of one sweep point in the ledger."""

    figure: str
    kind: str
    index: int
    seed: int = 0
    attempt: int = 0
    worker: int = 0
    status: str = "running"  # running | done | failed
    cache: str = ""
    started_unix: Optional[float] = None
    #: Elapsed seconds reported by the latest heartbeat of this attempt.
    heartbeat_elapsed_s: Optional[float] = None
    wall_s: Optional[float] = None
    error: Optional[str] = None
    maxrss_kb: Optional[int] = None
    cpu_s: Optional[float] = None

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.figure, self.kind, self.index)

    def as_dict(self) -> JsonDict:
        """JSON-able view (``None`` fields omitted, keys stable)."""
        out: JsonDict = {
            "figure": self.figure,
            "kind": self.kind,
            "index": self.index,
            "seed": self.seed,
            "attempt": self.attempt,
            "worker": self.worker,
            "status": self.status,
        }
        for name in (
            "cache",
            "started_unix",
            "heartbeat_elapsed_s",
            "wall_s",
            "error",
            "maxrss_kb",
            "cpu_s",
        ):
            value = getattr(self, name)
            if value not in (None, ""):
                out[name] = value
        return out


@dataclass
class LedgerState:
    """Pure reducer from ledger events to the current sweep picture."""

    #: The ``sweep_start`` event, once seen.
    start: Optional[JsonDict] = None
    #: The ``sweep_end`` event, once seen.
    end: Optional[JsonDict] = None
    points: Dict[Tuple[str, str, int], PointState] = field(default_factory=dict)
    #: Events whose kind is not a ledger kind (tolerated, counted).
    ignored: int = 0

    # -- folding --------------------------------------------------------
    def apply(self, event: Mapping[str, Any]) -> None:
        """Fold one ledger event into the state."""
        kind = event.get("event")
        if kind == "sweep_start":
            self.start = dict(event)
        elif kind == "sweep_end":
            self.end = dict(event)
        elif kind == "point_start":
            point = self._point(event)
            if point is not None:
                point.seed = int(event.get("seed", point.seed))
                point.worker = int(event.get("worker", point.worker))
                point.started_unix = float(event["started_unix"])
                point.status = "running"
        elif kind == "point_heartbeat":
            point = self._point(event)
            if point is not None:
                point.worker = int(event.get("worker", point.worker))
                point.heartbeat_elapsed_s = float(event["elapsed_s"])
                self._resources(point, event)
        elif kind == "point_end":
            point = self._point(event)
            if point is not None:
                point.seed = int(event.get("seed", point.seed))
                point.worker = int(event.get("worker", point.worker))
                point.status = "done" if event.get("ok") else "failed"
                point.cache = str(event.get("cache", ""))
                point.wall_s = float(event["wall_s"])
                error = event.get("error")
                point.error = str(error) if error is not None else None
                self._resources(point, event)
        else:
            self.ignored += 1

    def apply_all(self, events: List[JsonDict]) -> None:
        for event in events:
            self.apply(event)

    def _point(self, event: Mapping[str, Any]) -> Optional[PointState]:
        """The point a per-point event belongs to, honoring attempts.

        A higher ``attempt`` resets the point (the retry supersedes the
        failed attempt's heartbeats and end state); a lower attempt's
        event is stale — a straggler line from a superseded worker —
        and is dropped.
        """
        key = (str(event["figure"]), str(event["kind"]), int(event["index"]))
        attempt = int(event.get("attempt", 0))
        point = self.points.get(key)
        if point is None or attempt > point.attempt:
            point = PointState(
                figure=key[0], kind=key[1], index=key[2], attempt=attempt
            )
            self.points[key] = point
            return point
        if attempt < point.attempt:
            self.ignored += 1
            return None
        return point

    @staticmethod
    def _resources(point: PointState, event: Mapping[str, Any]) -> None:
        rss = event.get("maxrss_kb")
        if rss is not None:
            point.maxrss_kb = int(rss)
        cpu = event.get("cpu_s")
        if cpu is not None:
            point.cpu_s = float(cpu)

    # -- loading --------------------------------------------------------
    @classmethod
    def from_ledger(cls, path: str) -> "LedgerState":
        """Fold a whole ledger file (tolerating a torn final line)."""
        state = cls()
        events, _offset = read_events_tail(path)
        state.apply_all(events)
        return state

    # -- derived views --------------------------------------------------
    @property
    def expected_points(self) -> Optional[int]:
        if self.start is not None:
            return int(self.start["points"])
        return None

    def by_status(self, status: str) -> List[PointState]:
        return sorted(
            (p for p in self.points.values() if p.status == status),
            key=lambda p: p.key,
        )

    def counts(self) -> Dict[str, int]:
        counts = {"done": 0, "failed": 0, "running": 0}
        for point in self.points.values():
            counts[point.status] += 1
        return counts

    def elapsed_s(self, now: float) -> Optional[float]:
        if self.start is None:
            return None
        if self.end is not None:
            return float(self.end["wall_s"])
        return max(0.0, now - float(self.start["started_unix"]))

    def throughput(self, now: float) -> Optional[float]:
        """Completed points per second of sweep wall time."""
        elapsed = self.elapsed_s(now)
        counts = self.counts()
        finished = counts["done"] + counts["failed"]
        if not elapsed or elapsed <= 0 or not finished:
            return None
        return finished / elapsed

    def eta_s(self, now: float) -> Optional[float]:
        """Naive remaining-work estimate from current throughput."""
        if self.end is not None:
            return 0.0
        expected = self.expected_points
        rate = self.throughput(now)
        if expected is None or rate is None:
            return None
        counts = self.counts()
        remaining = expected - counts["done"] - counts["failed"]
        return max(0.0, remaining / rate)

    def slowest(self, now: float, limit: int = 5) -> List[Tuple[float, PointState]]:
        """The points that have consumed the most wall time so far.

        Finished points rank by their ``wall_s``; in-flight points by
        time since their ``point_start`` (so stragglers surface while
        still running).
        """
        ranked: List[Tuple[float, PointState]] = []
        for point in self.points.values():
            if point.wall_s is not None:
                ranked.append((point.wall_s, point))
            elif point.started_unix is not None:
                ranked.append((max(0.0, now - point.started_unix), point))
        ranked.sort(key=lambda item: (-item[0], item[1].key))
        return ranked[:limit]

    def stale(self, now: float, factor: float = 3.0) -> List[PointState]:
        """In-flight points whose heartbeat has gone quiet.

        A point is stale when nothing has been heard from it (start or
        heartbeat) for ``factor`` heartbeat intervals.  Without a
        ``sweep_start`` declaring ``heartbeat_s`` there is no cadence to
        judge against and nothing is flagged.
        """
        if self.start is None:
            return []
        interval = self.start.get("heartbeat_s")
        if interval is None:
            return []
        horizon = float(interval) * factor
        quiet: List[PointState] = []
        for point in self.by_status("running"):
            if point.started_unix is None:
                continue
            last_heard = point.started_unix + (point.heartbeat_elapsed_s or 0.0)
            if now - last_heard > horizon:
                quiet.append(point)
        return quiet

    def summary(self, now: float) -> JsonDict:
        """JSON-able snapshot of everything the dashboard shows."""
        counts = self.counts()
        return {
            "figure": self.start["figure"] if self.start else None,
            "expected_points": self.expected_points,
            "done": counts["done"],
            "failed": counts["failed"],
            "running": counts["running"],
            "finished": self.end is not None,
            "ok": bool(self.end["ok"]) if self.end else None,
            "elapsed_s": self.elapsed_s(now),
            "throughput_per_s": self.throughput(now),
            "eta_s": self.eta_s(now),
            "slowest": [
                {"elapsed_s": elapsed, **point.as_dict()}
                for elapsed, point in self.slowest(now)
            ],
            "stale": [point.as_dict() for point in self.stale(now)],
            "failed_points": [point.as_dict() for point in self.by_status("failed")],
        }
