"""Tail-following over a growing set of JSONL files.

:class:`TraceFollower` is the polling primitive under the incremental
analytics and the watch dashboard: it remembers a clean byte offset per
file (via :func:`repro.obs.events.read_events_tail`), discovers new
``*.jsonl`` files appearing in watched directories between polls, and
accumulates each file's parsed events so analytics that need a whole
run's history (replay validation, span detection) can re-derive it
without re-reading bytes already consumed.

A torn final line — a writer mid-append, or the last flush of a killed
worker — is simply left for the next poll; followers never see a
partial record and never raise on one.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.obs.events import JsonDict, read_events_tail

__all__ = ["TraceFollower"]


class TraceFollower:
    """Incremental reader over files and directories of JSONL streams."""

    def __init__(self, paths: Sequence[str]) -> None:
        self._roots = list(paths)
        #: Clean byte offset consumed so far, per file.
        self.offsets: Dict[str, int] = {}
        #: Every event consumed so far, per file, in append order.
        self.events: Dict[str, List[JsonDict]] = {}

    def files(self) -> List[str]:
        """The watched files right now (directories expand per poll)."""
        found: List[str] = []
        for root in self._roots:
            if os.path.isdir(root):
                found.extend(
                    os.path.join(root, name)
                    for name in sorted(os.listdir(root))
                    if name.endswith(".jsonl")
                )
            elif os.path.exists(root):
                found.append(root)
        return found

    def poll(self) -> List[str]:
        """Consume newly appended complete lines; return changed files."""
        changed: List[str] = []
        for path in self.files():
            offset = self.offsets.get(path, 0)
            fresh, clean = read_events_tail(path, start=offset)
            if fresh:
                self.events.setdefault(path, []).extend(fresh)
                changed.append(path)
            self.offsets[path] = clean
        return changed
