"""Incremental trace-scan and trace-verify over growing trace files.

Both classes wrap a :class:`TraceFollower` and re-analyze only the files
that changed since the last poll, over those files' *accumulated*
events — span detection and replay validation need a run's full history,
but never re-read bytes already consumed.  During polling the analyzers
run with ``open_tail=True`` so the still-growing final run of each file
is not misreported as truncated; :meth:`finalize` re-runs the strict
post-hoc pass, which is what makes the streaming verdicts converge to
exactly what ``trace-scan`` / ``trace-verify`` would say after the fact.

Scan findings are deduplicated across polls by identity (an anomaly
reported at poll 3 is not re-reported at poll 4 just because its file
grew); validation reports are replaced wholesale per file, since a
report is a statement about the whole file.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.obs.analyze.anomaly import Anomaly, ScanThresholds, scan_events
from repro.obs.analyze.validate import ValidationReport, validate_events
from repro.obs.live.follow import TraceFollower

__all__ = ["IncrementalScanner", "IncrementalValidator"]

_AnomalyKey = Tuple[str, int, str, object, str]


def _anomaly_key(anomaly: Anomaly) -> _AnomalyKey:
    return (
        anomaly.path,
        anomaly.run,
        anomaly.kind,
        anomaly.step,
        anomaly.detail,
    )


class IncrementalScanner:
    """Streaming ``trace-scan``: new anomalies per poll, strict at the end."""

    def __init__(
        self,
        paths: Sequence[str],
        thresholds: ScanThresholds = ScanThresholds(),
    ) -> None:
        self.thresholds = thresholds
        self.follower = TraceFollower(paths)
        self._seen: Set[_AnomalyKey] = set()
        #: Every anomaly surfaced so far, in discovery order.
        self.findings: List[Anomaly] = []

    def poll(self) -> List[Anomaly]:
        """Consume growth, return anomalies not reported before."""
        fresh: List[Anomaly] = []
        for path in self.follower.poll():
            found = scan_events(
                self.follower.events[path],
                path=path,
                thresholds=self.thresholds,
                open_tail=True,
            )
            for anomaly in found:
                key = _anomaly_key(anomaly)
                if key not in self._seen:
                    self._seen.add(key)
                    fresh.append(anomaly)
        self.findings.extend(fresh)
        return fresh

    def finalize(self) -> List[Anomaly]:
        """One last poll, then the strict pass over every file.

        The strict pass drops the open-tail allowance, so a genuinely
        truncated final run (killed worker) is flagged here — the
        returned list is exactly what a post-hoc ``scan_paths`` over the
        same files reports.
        """
        self.poll()
        final: List[Anomaly] = []
        for path in self.follower.files():
            final.extend(
                scan_events(
                    self.follower.events.get(path, []),
                    path=path,
                    thresholds=self.thresholds,
                    open_tail=False,
                )
            )
        for anomaly in final:
            key = _anomaly_key(anomaly)
            if key not in self._seen:
                self._seen.add(key)
                self.findings.append(anomaly)
        return final


class IncrementalValidator:
    """Streaming ``trace-verify``: per-file reports refreshed per poll."""

    def __init__(self, paths: Sequence[str]) -> None:
        self.follower = TraceFollower(paths)
        #: Latest validation report per file (open-tail until finalize).
        self.reports: Dict[str, ValidationReport] = {}

    def poll(self) -> List[ValidationReport]:
        """Consume growth, return refreshed reports for changed files."""
        refreshed: List[ValidationReport] = []
        for path in self.follower.poll():
            report = validate_events(
                self.follower.events[path], path=path, open_tail=True
            )
            self.reports[path] = report
            refreshed.append(report)
        return refreshed

    def finalize(self) -> List[ValidationReport]:
        """One last poll, then strict reports for every file.

        Identical to running ``validate_trace`` post hoc on each file.
        """
        self.poll()
        final: List[ValidationReport] = []
        for path in self.follower.files():
            report = validate_events(
                self.follower.events.get(path, []), path=path, open_tail=False
            )
            self.reports[path] = report
            final.append(report)
        return final

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports.values())
