"""Makespan attribution: explain a run's gap over the §5 lower bounds.

:mod:`repro.obs.analyze.causal` reconstructs *structure* (forest,
critical path, blocking causes); this module turns that structure into
the paper-facing verdict: **where did the makespan come from?**  For
each run it reports the two cheap lower bounds of §5
(:func:`repro.core.bounds.lookahead_timestep_bound` on the initial
state, :func:`repro.core.bounds.diameter_knowledge_bound`), the gap

    ``gap = makespan − max(lookahead_bound, diameter_bound)``

and a decomposition of that gap into the blocking categories, computed
by re-evaluating the lookahead bound on the replayed possession state at
the start of *every* timestep.  A step in which the bound fails to drop
is a step the run "lost"; the loss is charged to the step's dominant
blocking cause (most idle vertex-steps, ties broken in category order).
Steps that outpace the bound (it drops by more than one) earn *negative*
loss, which — together with the residual bound at the end of a failed
run and the portion of the diameter bound exceeding the lookahead bound
— is folded into the signed ``bound-slack`` term.  The bookkeeping
telescopes, so the terms sum to the gap **exactly**, for failed runs and
for negative gaps (diameter above makespan) alike; the property suite
pins this down.

Attribution is *refusal-first*: the event stream is replay-validated
against the §2 invariants (:mod:`repro.obs.analyze.validate`) before any
causal structure is derived, and a corrupted or truncated trace raises
:class:`AttributionError` naming the first broken invariant and the
fault step.  Unlike the validator, this module deliberately imports
:mod:`repro.core` (bounds need graph distances), but still never touches
:mod:`repro.sim` — attribution is a pure function of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.bounds import (
    InfeasibleBoundError,
    diameter_knowledge_bound,
    lookahead_timestep_bound,
)
from repro.core.problem import Problem
from repro.core.tokenset import TokenSet
from repro.obs.analyze.causal import (
    BLOCKING_CATEGORIES,
    CriticalPath,
    RunForest,
    blocking_table,
    build_forest,
    critical_path,
    dominant_category,
    transfer_slack,
)
from repro.obs.analyze.runs import JsonDict, TraceRun, split_runs
from repro.obs.analyze.validate import validate_events
from repro.obs.events import make_event, read_events

__all__ = [
    "GAP_SLACK_KEY",
    "AttributionError",
    "AttributionReport",
    "RunAttribution",
    "SkippedRun",
    "attribute_events",
    "attribute_run",
    "attribute_trace",
    "summary_event",
]

#: Gap-decomposition key for time not explained by any blocking cause:
#: bound looseness, super-bound progress, residual bound of failed runs,
#: and the diameter term's excess over the lookahead term.  Signed.
GAP_SLACK_KEY = "bound-slack"


class AttributionError(ValueError):
    """A trace failed replay validation; attribution refuses to run.

    The message names the first broken invariant and localizes the
    fault step, so a corrupted trace fails *at* the corruption.
    """

    def __init__(
        self,
        message: str,
        path: str = "<events>",
        run: Optional[int] = None,
        step: Optional[int] = None,
        invariant: Optional[str] = None,
    ) -> None:
        where = path
        if run is not None:
            where += f": run {run}"
            if step is not None:
                where += f" step {step}"
        tag = f"[{invariant}] " if invariant else ""
        super().__init__(f"{where}: {tag}{message}")
        self.path = path
        self.run = run
        self.step = step
        self.invariant = invariant


@dataclass
class RunAttribution:
    """One run's full makespan attribution."""

    run: int
    engine: str
    heuristic: str
    problem: str
    makespan: int
    success: bool
    bound_lookahead: int
    bound_diameter: int
    #: Blocking categories plus :data:`GAP_SLACK_KEY`; values sum to
    #: :attr:`gap` exactly (zero-valued terms are omitted).
    gap_terms: Dict[str, int]
    #: Idle vertex-steps per category over the whole run (non-zero only).
    blocking: Dict[str, int]
    path: CriticalPath
    arrivals: int
    zero_slack: int
    max_slack: int

    @property
    def bound_floor(self) -> int:
        return max(self.bound_lookahead, self.bound_diameter)

    @property
    def gap(self) -> int:
        return self.makespan - self.bound_floor

    @property
    def dominant_cause(self) -> str:
        """The most frequent blocking cause overall (``"none"`` when the
        run never idled)."""
        if not self.blocking:
            return "none"
        return dominant_category(self.blocking)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able view for ``--format json`` consumers."""
        return {
            "run": self.run,
            "engine": self.engine,
            "heuristic": self.heuristic,
            "problem": self.problem,
            "makespan": self.makespan,
            "success": self.success,
            "bounds": {
                "lookahead": self.bound_lookahead,
                "diameter": self.bound_diameter,
                "floor": self.bound_floor,
            },
            "gap": self.gap,
            "gap_terms": dict(self.gap_terms),
            "blocking": dict(self.blocking),
            "dominant_cause": self.dominant_cause,
            "critical_path": {
                "length": self.path.length,
                "hops": [
                    {"step": h.step, "src": h.src, "dst": h.dst, "token": h.token}
                    for h in self.path.hops
                ],
                "wait_steps": self.path.wait_steps,
                "wait_categories": self.path.category_counts(),
                "target": [self.path.target_vertex, self.path.target_token],
            },
            "transfers": {
                "arrivals": self.arrivals,
                "zero_slack": self.zero_slack,
                "max_slack": self.max_slack,
            },
        }

    def render(self) -> str:
        outcome = "success" if self.success else "FAILED"
        lines = [
            f"run {self.run}: {self.heuristic} on {self.problem} "
            f"[{self.engine}] {outcome} makespan={self.makespan}",
            f"  bounds: lookahead={self.bound_lookahead} "
            f"diameter={self.bound_diameter} -> floor {self.bound_floor}; "
            f"gap {self.gap:+d}",
        ]
        if self.gap_terms:
            parts = ", ".join(
                f"{key} {self.gap_terms[key]:+d}"
                for key in (*BLOCKING_CATEGORIES, GAP_SLACK_KEY)
                if key in self.gap_terms
            )
            lines.append(f"  gap attribution: {parts}")
        else:
            lines.append("  gap attribution: (tight: bound met exactly)")
        waits = self.path.category_counts()
        wait_txt = (
            "; waits: "
            + ", ".join(f"{c} {n}" for c, n in sorted(waits.items()))
            if waits
            else ""
        )
        lines.append(
            f"  critical path: {len(self.path.hops)} hop(s) + "
            f"{self.path.wait_steps} wait(s) = {self.path.length} "
            f"(completes v{self.path.target_vertex}"
            f":t{self.path.target_token}){wait_txt}"
        )
        lines.append(
            f"  transfers: {self.arrivals} useful arrival(s), "
            f"{self.zero_slack} with zero slack, max slack {self.max_slack}"
        )
        if self.blocking:
            parts = ", ".join(
                f"{c} {self.blocking[c]}"
                for c in BLOCKING_CATEGORIES
                if c in self.blocking
            )
            lines.append(f"  idle vertex-steps: {parts}")
        else:
            lines.append("  idle vertex-steps: none")
        return "\n".join(lines)


@dataclass(frozen=True)
class SkippedRun:
    """A run attribution declined to analyze, and why."""

    run: int
    engine: str
    heuristic: str
    reason: str

    def render(self) -> str:
        return f"run {self.run}: skipped ({self.reason})"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "run": self.run,
            "engine": self.engine,
            "heuristic": self.heuristic,
            "reason": self.reason,
        }


@dataclass
class AttributionReport:
    """Everything one attribution pass derived from a trace."""

    path: str
    runs: List[RunAttribution] = field(default_factory=list)
    skipped: List[SkippedRun] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "runs": [r.as_dict() for r in self.runs],
            "skipped": [s.as_dict() for s in self.skipped],
        }

    def render(self) -> str:
        lines = [
            f"trace-attribute {self.path}: {len(self.runs)} run(s) "
            f"attributed, {len(self.skipped)} skipped"
        ]
        for run in self.runs:
            lines.append("")
            lines.append(run.render())
        for skip in self.skipped:
            lines.append("")
            lines.append(skip.render())
        return "\n".join(lines)


def _bound_trajectory(
    problem: Problem, forest: RunForest
) -> List[int]:
    """Lookahead bound on the replayed possession at each step start
    (index ``makespan`` is the final state)."""
    return [
        lookahead_timestep_bound(
            problem, [TokenSet(mask) for mask in masks]
        )
        for masks in forest.have_before
    ]


def _decompose_gap(
    forest: RunForest,
    bound_curve: Sequence[int],
    diameter: int,
    per_step: Dict[int, Dict[str, int]],
) -> Dict[str, int]:
    """Split ``makespan − max(B_0, D)`` across blocking categories.

    Each step's loss is ``1 − (B_s − B_{s+1})``: zero when the run kept
    exact pace with the bound, positive when the bound stalled, negative
    when it dropped faster than one per step.  Positive losses go to the
    step's dominant blocking cause; everything signed or unexplained
    lands in :data:`GAP_SLACK_KEY`.  The sum telescopes to the gap
    exactly — see the module docstring.
    """
    terms: Dict[str, int] = {c: 0 for c in BLOCKING_CATEGORIES}
    slack = 0
    for s in range(forest.makespan):
        lost = 1 - (bound_curve[s] - bound_curve[s + 1])
        if lost == 0:
            continue
        counts = per_step.get(s)
        if lost > 0 and counts:
            terms[dominant_category(counts)] += lost
        else:
            slack += lost
    # Telescoping residue: Σ lost = M − B_0 + B_M.  Subtracting the
    # final bound (non-zero only for failed runs) and the diameter
    # term's excess over B_0 lands the total at M − max(B_0, D).
    slack -= bound_curve[forest.makespan]
    slack -= max(0, diameter - bound_curve[0])
    out = {c: n for c, n in terms.items() if n}
    if slack:
        out[GAP_SLACK_KEY] = slack
    return out


def attribute_run(run: TraceRun) -> RunAttribution:
    """Attribute one *already-validated* run.

    Raises :class:`repro.obs.analyze.causal.CausalError` on structural
    gaps validation would have caught, and
    :class:`repro.core.bounds.InfeasibleBoundError` when the instance
    admits no finite bound — callers turn the latter into a skip.
    """
    forest = build_forest(run)
    problem = Problem.from_dict(run.start["instance"])
    bound_curve = _bound_trajectory(problem, forest)
    diameter = diameter_knowledge_bound(problem)

    table = blocking_table(forest)
    blocking: Dict[str, int] = {}
    per_step: Dict[int, Dict[str, int]] = {}
    for (_vertex, step), category in table.items():
        blocking[category] = blocking.get(category, 0) + 1
        bucket = per_step.setdefault(step, {})
        bucket[category] = bucket.get(category, 0) + 1

    path = critical_path(forest)
    slacks = transfer_slack(forest)
    return RunAttribution(
        run=forest.run,
        engine=forest.engine,
        heuristic=forest.heuristic,
        problem=str(run.start.get("problem", forest.instance.name or "?")),
        makespan=forest.makespan,
        success=forest.success,
        bound_lookahead=bound_curve[0],
        bound_diameter=diameter,
        gap_terms=_decompose_gap(forest, bound_curve, diameter, per_step),
        blocking=blocking,
        path=path,
        arrivals=len(forest.arrivals),
        zero_slack=sum(1 for s in slacks.values() if s == 0),
        max_slack=max(slacks.values(), default=0),
    )


def attribute_events(
    events: Sequence[JsonDict], path: str = "<events>"
) -> AttributionReport:
    """Validate, then attribute, every run of an event stream.

    Replay validation runs first; any §2 violation aborts the whole
    attribution with :class:`AttributionError` naming the fault step —
    a forest built over corrupt transfers would be confidently wrong.
    Dynamic-conditions runs and infeasible instances are *skipped* (with
    the reason recorded), not errors: the trace is fine, the analysis
    just does not apply.
    """
    verdict = validate_events(events, path=path)
    if not verdict.ok:
        first = verdict.violations[0]
        raise AttributionError(
            f"refusing to attribute an invalid trace: {first.message} "
            f"({len(verdict.violations)} violation(s) total)",
            path=path,
            run=first.run,
            step=first.step,
            invariant=first.invariant,
        )
    _header, runs = split_runs(events)
    report = AttributionReport(path=path)
    for run in runs:
        if run.engine == "dynamic":
            report.skipped.append(
                SkippedRun(
                    run=run.run,
                    engine=run.engine,
                    heuristic=run.heuristic,
                    reason="dynamic-conditions run: the arc set changes "
                    "each turn, so arc-level blocking cannot be "
                    "reconstructed from the trace",
                )
            )
            continue
        try:
            report.runs.append(attribute_run(run))
        except InfeasibleBoundError as exc:
            report.skipped.append(
                SkippedRun(
                    run=run.run,
                    engine=run.engine,
                    heuristic=run.heuristic,
                    reason=f"no finite lower bound: {exc}",
                )
            )
    return report


def attribute_trace(path: str) -> AttributionReport:
    """Load a trace JSONL file and attribute every run in it."""
    return attribute_events(read_events(path), path=path)


def summary_event(attribution: RunAttribution) -> JsonDict:
    """One run's attribution as a schema-valid ``run_attribution`` event.

    The compact, flat companion to :meth:`RunAttribution.as_dict`: what
    ``trace-attribute --format json`` embeds per run, shaped as an event
    so schema-aware consumers (and OCD013) hold it to the registry.
    """
    fields = {
        "run": attribution.run,
        "engine": attribution.engine,
        "heuristic": attribution.heuristic,
        "problem": attribution.problem,
        "makespan": attribution.makespan,
        "success": attribution.success,
        "bound_lookahead": attribution.bound_lookahead,
        "bound_diameter": attribution.bound_diameter,
        "gap": attribution.gap,
        "gap_terms": dict(attribution.gap_terms),
        "blocking": dict(attribution.blocking),
        "path_length": attribution.path.length,
        "path_hops": len(attribution.path.hops),
        "path_wait_steps": attribution.path.wait_steps,
        "dominant_cause": attribution.dominant_cause,
        "arrivals": attribution.arrivals,
        "zero_slack": attribution.zero_slack,
        "max_slack": attribution.max_slack,
    }
    return make_event("run_attribution", fields)
