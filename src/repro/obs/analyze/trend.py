"""Bench trend gating: compare two ``BENCH_engine.json`` snapshots.

``benchmarks/engine_perf.py`` writes a JSON file with one entry per
benchmark case (``{"label": {"speedup": ..., "moves": ...,
"incremental_moves_per_sec": ..., ...}}``). :func:`compare_bench` pairs
the cases of an *old* (committed baseline) and *new* (freshly measured)
snapshot and computes the per-case ratio ``new/old`` for one metric;
a case whose ratio falls below ``1 - threshold`` is a regression, and
the CLI ``bench-trend`` command exits non-zero when any case regresses.

Ratios are paired per-case rather than aggregated: a 2x win on one case
must not mask a 30% loss on another. Cases present on only one side are
reported (a silently dropped benchmark is itself a trend worth seeing)
but do not fail the gate.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = ["CaseTrend", "TrendReport", "compare_bench", "load_bench"]


def load_bench(path: str) -> Dict[str, Dict[str, Any]]:
    """Load a ``BENCH_engine.json``-shaped snapshot as its case mapping.

    Accepts both the committed file's shape (cases nested under a
    ``"cases"`` key, alongside ``"_comment"``/``"repeats"`` metadata)
    and a bare ``{label: {metric: value}}`` mapping.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: bench snapshot must be a JSON object")
    cases = data.get("cases", data)
    if not isinstance(cases, dict):
        raise ValueError(f"{path}: 'cases' must be a JSON object")
    out = {
        label: case for label, case in cases.items() if isinstance(case, dict)
    }
    if not out:
        raise ValueError(f"{path}: bench snapshot contains no cases")
    return out


@dataclass(frozen=True)
class CaseTrend:
    """One benchmark case's old-vs-new movement on one metric."""

    label: str
    metric: str
    old: float
    new: float

    @property
    def ratio(self) -> float:
        if self.old == 0:
            return math.inf if self.new > 0 else 1.0
        return self.new / self.old

    def regressed(self, threshold: float) -> bool:
        return self.ratio < 1.0 - threshold

    def as_dict(self, threshold: float) -> Dict[str, Any]:
        """JSON-able view for ``--format json`` consumers."""
        return {
            "label": self.label,
            "metric": self.metric,
            "old": self.old,
            "new": self.new,
            "ratio": self.ratio if math.isfinite(self.ratio) else None,
            "regressed": self.regressed(threshold),
        }

    def render(self, threshold: float) -> str:
        verdict = "REGRESSED" if self.regressed(threshold) else "ok"
        return (
            f"{self.label:<24} {self.metric}: {self.old:.3f} -> "
            f"{self.new:.3f}  (x{self.ratio:.3f})  {verdict}"
        )


@dataclass(frozen=True)
class TrendReport:
    """Paired comparison of two bench snapshots."""

    old_path: str
    new_path: str
    metric: str
    threshold: float
    cases: Tuple[CaseTrend, ...]
    #: Labels only in the new / only in the old snapshot.
    added: Tuple[str, ...]
    removed: Tuple[str, ...]

    @property
    def regressions(self) -> List[CaseTrend]:
        return [c for c in self.cases if c.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able view for ``--format json`` consumers."""
        return {
            "old_path": self.old_path,
            "new_path": self.new_path,
            "metric": self.metric,
            "threshold": self.threshold,
            "ok": self.ok,
            "cases": [c.as_dict(self.threshold) for c in self.cases],
            "added": list(self.added),
            "removed": list(self.removed),
        }

    def render(self) -> str:
        lines = [
            f"bench-trend: {self.old_path} -> {self.new_path} "
            f"(metric={self.metric}, threshold={self.threshold:.0%})"
        ]
        for case in self.cases:
            lines.append("  " + case.render(self.threshold))
        for label in self.added:
            lines.append(f"  {label:<24} only in new snapshot (not gated)")
        for label in self.removed:
            lines.append(f"  {label:<24} only in old snapshot (dropped?)")
        if self.ok:
            lines.append(
                f"  all {len(self.cases)} paired case(s) within threshold"
            )
        else:
            lines.append(
                f"  {len(self.regressions)} of {len(self.cases)} paired "
                f"case(s) regressed past {self.threshold:.0%}"
            )
        return "\n".join(lines)


def compare_bench(
    old_path: str,
    new_path: str,
    metric: str = "speedup",
    threshold: float = 0.10,
) -> TrendReport:
    """Pair two bench snapshots and flag per-case regressions on ``metric``."""
    old = load_bench(old_path)
    new = load_bench(new_path)
    cases: List[CaseTrend] = []
    for label in sorted(set(old) & set(new)):
        old_case, new_case = old[label], new[label]
        if metric not in old_case or metric not in new_case:
            raise ValueError(
                f"case {label!r} lacks metric {metric!r} "
                f"(old has {sorted(old_case)}, new has {sorted(new_case)})"
            )
        cases.append(
            CaseTrend(
                label=label,
                metric=metric,
                old=float(old_case[metric]),
                new=float(new_case[metric]),
            )
        )
    return TrendReport(
        old_path=old_path,
        new_path=new_path,
        metric=metric,
        threshold=threshold,
        cases=tuple(cases),
        added=tuple(sorted(set(new) - set(old))),
        removed=tuple(sorted(set(old) - set(new))),
    )
