"""Trace-replay validation: re-check schedule validity from a trace alone.

A trace produced by any engine is a *claim* about a run: the instance it
started from (``run_start.instance``), the per-arc token movement of
every timestep (``step.transfers``), and the outcome (``run_end``).
:func:`validate_trace` replays that claim and re-checks the paper's §2
schedule-validity invariants without re-running the simulator:

``arc-capacity``
    Every transfer uses a declared arc and sends at most its capacity.
``sender-possession``
    A vertex only sends tokens it possessed at the start of the step.
``monotone-have``
    Possession only grows: no vertex's reported deficit ever rises.
``step-consistency``
    The aggregate fields each ``step`` event reports (``deficit``,
    ``deficit_by_vertex``, ``gained``, ``moves``, ``sends``) match the
    state reconstructed from the transfers.
``final-want``
    The ``run_end`` verdict matches the reconstructed final state
    (``success`` iff ``w(v) ⊆ p(v)`` everywhere), and its
    ``makespan``/``bandwidth`` aggregates match the replay.
``trace-structure``
    The trace is well-formed enough to replay at all: ``run_start``
    carries an instance, steps are contiguously numbered and carry
    transfers, and every run is closed by a ``run_end``.

The replay is an independent implementation of the semantics — plain
bitmask arithmetic over the JSON, importing nothing from the simulation
kernel — so an engine bug cannot hide by also corrupting the validator.
Dynamic-conditions traces (``engine: "dynamic"``) skip the two arc-level
checks: their arc set and capacities change per timestep and only the
turn's engine knows them; everything state-based is still enforced.

Streaming validation (:class:`repro.obs.live.IncrementalValidator`)
passes ``open_tail=True``: the *final* run of a still-growing trace may
legitimately lack its ``run_end`` yet, so only its per-step invariants
are replayed and the missing-``run_end`` structure violation is
deferred; a finalize pass with ``open_tail=False`` restores the
post-hoc verdict exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.analyze.runs import (
    DecodedInstance,
    JsonDict,
    TraceRun,
    mask_of,
    split_runs,
    tokens_of,
)
from repro.obs.events import read_events

__all__ = ["Violation", "ValidationReport", "validate_events", "validate_trace"]

#: Invariant codes in the order the run replay checks them.
INVARIANTS = (
    "trace-structure",
    "arc-capacity",
    "sender-possession",
    "monotone-have",
    "step-consistency",
    "final-want",
)


@dataclass(frozen=True)
class Violation:
    """One invariant broken at one point of one run."""

    run: int
    step: Optional[int]
    invariant: str
    message: str

    def render(self) -> str:
        where = f"run {self.run}"
        if self.step is not None:
            where += f" step {self.step}"
        return f"{where}: [{self.invariant}] {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able view for ``--format json`` consumers."""
        return {
            "run": self.run,
            "step": self.step,
            "invariant": self.invariant,
            "message": self.message,
        }


@dataclass
class ValidationReport:
    """Everything one validation pass established about a trace."""

    path: str
    runs_checked: int = 0
    steps_checked: int = 0
    violations: List[Violation] = field(default_factory=list)
    #: Non-failure observations (e.g. skipped arc checks on dynamic runs).
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"trace-verify {self.path}: {self.runs_checked} run(s), "
            f"{self.steps_checked} step(s) replayed"
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.ok:
            lines.append("  all schedule-validity invariants hold")
        else:
            lines.append(f"  {len(self.violations)} violation(s):")
            for violation in self.violations:
                lines.append(f"    {violation.render()}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able view for ``--format json`` consumers."""
        return {
            "path": self.path,
            "ok": self.ok,
            "runs_checked": self.runs_checked,
            "steps_checked": self.steps_checked,
            "violations": [v.as_dict() for v in self.violations],
            "notes": list(self.notes),
        }


class _RunValidator:
    """Replays one run and accumulates violations."""

    def __init__(
        self, run: TraceRun, report: ValidationReport, open_tail: bool = False
    ) -> None:
        self.run = run
        self.report = report
        self.open_tail = open_tail

    def _flag(self, invariant: str, message: str, step: Optional[int] = None) -> None:
        self.report.violations.append(
            Violation(run=self.run.run, step=step, invariant=invariant, message=message)
        )

    def validate(self) -> None:
        run = self.run
        if run.start is None:
            self._flag(
                "trace-structure",
                "run has step/run_end events but no run_start",
            )
            return
        payload = run.start.get("instance")
        if payload is None:
            self._flag(
                "trace-structure",
                "run_start carries no instance payload (trace predates the "
                "analytics schema); re-record the trace to replay-validate it",
            )
            return
        try:
            instance = DecodedInstance.from_payload(payload)
        except ValueError as exc:
            self._flag("trace-structure", f"undecodable instance payload: {exc}")
            return
        dynamic = run.engine == "dynamic"
        if dynamic:
            self.report.notes.append(
                f"run {run.run} is a dynamic-conditions run; per-step arc "
                f"existence/capacity checks are skipped (the arc set changes "
                f"each turn)"
            )
        have = list(instance.have_masks)
        reported = instance.deficits(have)
        start_deficit = run.start.get("total_deficit")
        if start_deficit is not None and int(start_deficit) != sum(reported):
            self._flag(
                "step-consistency",
                f"run_start total_deficit={start_deficit} but the instance's "
                f"initial wanted-but-missing count is {sum(reported)}",
            )
        total_moves = 0
        for expected_step, event in enumerate(run.steps):
            total_moves += self._replay_step(
                instance, event, expected_step, have, reported, dynamic
            )
            self.report.steps_checked += 1
        self._check_end(instance, have, len(run.steps), total_moves)
        self.report.runs_checked += 1

    # ------------------------------------------------------------------
    def _replay_step(
        self,
        instance: DecodedInstance,
        event: JsonDict,
        expected_step: int,
        have: List[int],
        reported: List[int],
        dynamic: bool,
    ) -> int:
        step = int(event.get("step", expected_step))
        if step != expected_step:
            self._flag(
                "trace-structure",
                f"step events are not contiguous: expected step "
                f"{expected_step}, event says {step}",
                step=step,
            )
        transfers = event.get("transfers")
        if not isinstance(transfers, list):
            self._flag(
                "trace-structure",
                "step event carries no transfers list (trace predates the "
                "analytics schema); re-record the trace to replay-validate it",
                step=step,
            )
            return 0
        moves = 0
        arrivals: Dict[int, int] = {}
        for entry in transfers:
            src, dst, sent = int(entry[0]), int(entry[1]), list(entry[2])
            mask = mask_of(sent)
            moves += len(sent)
            if not dynamic:
                cap = instance.capacities.get((src, dst))
                if cap is None:
                    self._flag(
                        "arc-capacity",
                        f"transfer on undeclared arc ({src}, {dst})",
                        step=step,
                    )
                elif len(sent) > cap:
                    self._flag(
                        "arc-capacity",
                        f"{len(sent)} tokens sent on arc ({src}, {dst}) of "
                        f"capacity {cap}",
                        step=step,
                    )
            unpossessed = mask & ~have[src]
            if unpossessed:
                self._flag(
                    "sender-possession",
                    f"vertex {src} sent tokens {tokens_of(unpossessed)} it did "
                    f"not possess at the start of the step",
                    step=step,
                )
            arrivals[dst] = arrivals.get(dst, 0) | mask
        gained = 0
        for dst in sorted(arrivals):
            new = arrivals[dst] & ~have[dst]
            gained += new.bit_count()
            have[dst] |= new
        self._check_step_report(instance, event, step, have, reported, gained, moves)
        return moves

    def _check_step_report(
        self,
        instance: DecodedInstance,
        event: JsonDict,
        step: int,
        have: Sequence[int],
        reported: List[int],
        gained: int,
        moves: int,
    ) -> None:
        """Check the step's self-reported aggregates against the replay."""
        emitted = event.get("deficit_by_vertex")
        if isinstance(emitted, list) and len(emitted) == instance.num_vertices:
            for v, (prev, now) in enumerate(zip(reported, emitted)):
                if int(now) > int(prev):
                    self._flag(
                        "monotone-have",
                        f"vertex {v}'s reported deficit rose {prev} -> {now}; "
                        f"have-sets only ever grow",
                        step=step,
                    )
            reported[:] = [int(x) for x in emitted]
        replayed = instance.deficits(have)
        checks: List[tuple[str, Any, Any]] = [
            ("deficit_by_vertex", emitted, replayed),
            ("deficit", event.get("deficit"), sum(replayed)),
            ("gained", event.get("gained"), gained),
            ("moves", event.get("moves"), moves),
            ("sends", event.get("sends"), len(event.get("transfers", []))),
        ]
        for name, got, want in checks:
            if got is not None and got != want:
                self._flag(
                    "step-consistency",
                    f"step reports {name}={got} but replaying its transfers "
                    f"gives {want}",
                    step=step,
                )

    def _check_end(
        self,
        instance: DecodedInstance,
        have: Sequence[int],
        makespan: int,
        total_moves: int,
    ) -> None:
        end = self.run.end
        unmet = [
            v
            for v in range(instance.num_vertices)
            if instance.want_masks[v] & ~have[v]
        ]
        if end is None:
            if not self.open_tail:
                self._flag(
                    "trace-structure",
                    "run has no run_end event (trace truncated); final-state "
                    "invariants cannot be confirmed",
                )
            else:
                self.report.notes.append(
                    f"run {self.run.run} is still open (no run_end yet); "
                    f"final-state invariants deferred to finalize"
                )
            return
        success = bool(end.get("success"))
        if success and unmet:
            v = unmet[0]
            missing = tokens_of(instance.want_masks[v] & ~have[v])
            self._flag(
                "final-want",
                f"run_end claims success but vertex {v} still lacks wanted "
                f"tokens {missing} (and {len(unmet) - 1} other vertex(es) "
                f"are unmet)",
                step=makespan - 1 if makespan else None,
            )
        elif not success and not unmet:
            self._flag(
                "final-want",
                "run_end claims failure but every want is met in the "
                "replayed final state",
            )
        for name, got, want in (
            ("makespan", end.get("makespan"), makespan),
            ("bandwidth", end.get("bandwidth"), total_moves),
        ):
            if got is not None and int(got) != want:
                self._flag(
                    "final-want",
                    f"run_end reports {name}={got} but the replay gives {want}",
                )


def validate_events(
    events: Sequence[JsonDict],
    path: str = "<events>",
    open_tail: bool = False,
) -> ValidationReport:
    """Replay-validate an already-parsed event stream.

    ``open_tail=True`` treats the final run as still in progress: a
    missing ``run_end`` there becomes a note, not a violation.
    """
    report = ValidationReport(path=path)
    _header, runs = split_runs(events)
    if not runs:
        report.notes.append("trace contains no runs")
    for i, run in enumerate(runs):
        last = i == len(runs) - 1
        _RunValidator(run, report, open_tail=open_tail and last).validate()
    return report


def validate_trace(path: str, open_tail: bool = False) -> ValidationReport:
    """Load a trace JSONL file and replay-validate every run in it."""
    return validate_events(
        read_events(path, tail=open_tail), path=path, open_tail=open_tail
    )
