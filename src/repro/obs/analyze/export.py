"""Trace exports for external viewers: Chrome trace-viewer and Graphviz.

Two renderings of the causal structure :mod:`repro.obs.analyze.causal`
reconstructs, for the two questions a human asks of a slow run:

* :func:`chrome_trace` — *when did everything happen?*  A Chrome
  trace-viewer (``chrome://tracing`` / Perfetto) JSON object with one
  process per run and one lane (thread) per vertex; every transfer is a
  complete event on the receiving vertex's lane, one timestep = 1ms of
  viewer time, and critical-path hops carry their own category so they
  can be highlighted.  Timestamps are *simulated* steps — nothing here
  reads a clock, so the export is a deterministic function of the trace.

* :func:`dot_forest` — *where did each token come from?*  A Graphviz
  ``digraph`` with one cluster per (run, token): the dissemination tree
  rooted at the initial holders, each edge a parent transfer labeled
  with its step, critical-path edges emphasized.

Both are pure functions of the parsed event stream, built on the same
core-free forest replay as the rest of the analyzers; dynamic-conditions
runs are exported too (their forest is still well-defined — only
arc-*capacity* reasoning is not).  Corrupt traces fail with the fault
step named, exactly as attribution does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.obs.analyze.causal import build_forest, critical_path
from repro.obs.analyze.runs import JsonDict, split_runs

__all__ = ["chrome_trace", "dot_forest"]

#: Viewer microseconds per simulated timestep (1ms lanes read well).
_STEP_US = 1000


def _critical_hops(forest: Any) -> Set[Tuple[int, int, int, int]]:
    return {
        (hop.step, hop.src, hop.dst, hop.token)
        for hop in critical_path(forest).hops
    }


def chrome_trace(
    events: Sequence[JsonDict], path: str = "<events>"
) -> Dict[str, Any]:
    """Render an event stream as a Chrome trace-viewer JSON object."""
    _header, runs = split_runs(events)
    trace_events: List[Dict[str, Any]] = []
    for run in runs:
        forest = build_forest(run)
        critical = _critical_hops(forest)
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": forest.run,
                "tid": 0,
                "args": {
                    "name": f"run {forest.run}: {forest.heuristic} "
                    f"[{forest.engine}]"
                },
            }
        )
        for v in range(forest.instance.num_vertices):
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": forest.run,
                    "tid": v,
                    "args": {"name": f"v{v}"},
                }
            )
        for step, triples in enumerate(forest.transfers):
            for src, dst, tokens in triples:
                for token in tokens:
                    on_path = (step, src, dst, token) in critical
                    trace_events.append(
                        {
                            "ph": "X",
                            "name": f"t{token} {src}->{dst}",
                            "cat": "critical-path" if on_path else "transfer",
                            "pid": forest.run,
                            "tid": dst,
                            "ts": step * _STEP_US,
                            "dur": _STEP_US,
                            "args": {
                                "step": step,
                                "src": src,
                                "dst": dst,
                                "token": token,
                            },
                        }
                    )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": path, "step_us": _STEP_US},
    }


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def dot_forest(events: Sequence[JsonDict], path: str = "<events>") -> str:
    """Render an event stream's dissemination forest as Graphviz DOT."""
    _header, runs = split_runs(events)
    lines = ["digraph dissemination {", "  rankdir=LR;", f"  // {path}"]
    for run in runs:
        forest = build_forest(run)
        critical = _critical_hops(forest)
        by_token: Dict[int, List[Any]] = {}
        for arrival in forest.arrivals.values():
            by_token.setdefault(arrival.token, []).append(arrival)
        for token in sorted(by_token):
            arrivals = sorted(
                by_token[token], key=lambda a: (a.step, a.vertex)
            )
            lines.append(f"  subgraph cluster_r{forest.run}_t{token} {{")
            lines.append(
                f'    label="run {forest.run} token {token}";'
            )
            # Roots: initial holders that parented at least one arrival.
            roots = sorted(
                {
                    a.src
                    for a in arrivals
                    if forest.instance.have_masks[a.src] >> token & 1
                }
            )
            for v in roots:
                node = _quote(f"r{forest.run}t{token}v{v}")
                lines.append(
                    f'    {node} [label="v{v} (root)" shape=doublecircle];'
                )
            for a in arrivals:
                node = _quote(f"r{forest.run}t{token}v{a.vertex}")
                wanted = forest.instance.want_masks[a.vertex] >> token & 1
                shape = "box" if wanted else "ellipse"
                lines.append(
                    f'    {node} [label="v{a.vertex} @{a.step}" '
                    f"shape={shape}];"
                )
            for a in arrivals:
                src = _quote(f"r{forest.run}t{token}v{a.src}")
                dst = _quote(f"r{forest.run}t{token}v{a.vertex}")
                style = (
                    " color=red penwidth=2"
                    if (a.step, a.src, a.vertex, a.token) in critical
                    else ""
                )
                lines.append(
                    f'    {src} -> {dst} [label="step {a.step}"{style}];'
                )
            lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"
