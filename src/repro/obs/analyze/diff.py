"""Differential trace debugging: localize the first divergence of two runs.

When two schedules disagree — engine vs. the frozen reference oracle,
serial vs. parallel sweep, heuristic A vs. B — the question is never
"are the traces different" (``cmp`` answers that) but *where they first
split*. :func:`diff_traces` answers it at three resolutions:

1. **Bytes.** Identical files short-circuit: the traces are
   byte-identical, the determinism contract held.
2. **Structure.** Headers, run counts, and per-run event sequences are
   aligned on ``(kind, timestep)``; a missing or extra event (one run
   stalls where the other steps, one trace is truncated) is reported as
   the divergence.
3. **Fields.** For the earliest aligned event pair that differs, the
   first differing field (in sorted field order, for determinism) is
   named along with both values, and — when the field is ``transfers``
   — a semantic summary of what each run actually moved, e.g.
   ``run B stalls at step 7 (no transfers); run A transferred t3 on
   (v2, v5)``.

Fields can be excluded from comparison with ``ignore_fields`` — the CI
smoke job uses ``ignore_fields=("engine",)`` to compare a live engine
trace against a replayed reference trace that differs only in its
engine label.
"""

from __future__ import annotations

import filecmp
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.obs.analyze.runs import JsonDict, TraceRun, split_runs
from repro.obs.events import read_events

__all__ = ["Divergence", "TraceDiff", "diff_traces"]


@dataclass(frozen=True)
class Divergence:
    """The earliest point at which two traces disagree."""

    #: Run index the divergence occurs in (or -1 for header/trace level).
    run: int
    #: Event kind at the divergence point ("trace_header", "step", ...).
    kind: str
    #: Timestep of the diverging event, when it has one.
    step: Optional[int]
    #: First differing field, when the divergence is field-level.
    field: Optional[str]
    #: The two values (or event summaries) on each side.
    a: Any
    b: Any
    #: Human-readable account of the divergence.
    summary: str


@dataclass(frozen=True)
class TraceDiff:
    """Result of comparing two traces."""

    path_a: str
    path_b: str
    identical_bytes: bool
    divergence: Optional[Divergence]

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        if self.identical_bytes:
            return f"traces are byte-identical: {self.path_a} == {self.path_b}"
        if self.divergence is None:
            return (
                f"traces are semantically identical (bytes differ only in "
                f"ignored fields): {self.path_a} ~= {self.path_b}"
            )
        d = self.divergence
        lines = [f"traces diverge: A={self.path_a}  B={self.path_b}"]
        where = f"first divergence: run {d.run}, {d.kind}"
        if d.step is not None:
            where += f" at step {d.step}"
        if d.field is not None:
            where += f", field '{d.field}'"
        lines.append(where)
        lines.append(f"  A: {d.a!r}")
        lines.append(f"  B: {d.b!r}")
        lines.append(f"  {d.summary}")
        return "\n".join(lines)


def _describe_transfers(event: JsonDict, label: str) -> str:
    """One-line semantic account of what a step event moved."""
    step = event.get("step")
    transfers = event.get("transfers")
    if not transfers:
        return f"run {label} stalls at step {step} (no transfers)"
    parts = []
    for src, dst, tokens in transfers[:3]:
        toks = ", ".join(f"t{t}" for t in tokens)
        parts.append(f"{toks} on (v{src}, v{dst})")
    more = len(transfers) - 3
    if more > 0:
        parts.append(f"... {more} more arc(s)")
    return f"run {label} transferred " + "; ".join(parts)


def _event_summary(event: JsonDict, label: str) -> str:
    kind = event.get("event")
    if kind == "step":
        return _describe_transfers(event, label)
    if kind == "stall":
        return (
            f"run {label} reports a stall at step {event.get('step')} "
            f"(stalled_for={event.get('stalled_for')})"
        )
    if kind == "run_end":
        return (
            f"run {label} ends: success={event.get('success')}, "
            f"makespan={event.get('makespan')}, "
            f"bandwidth={event.get('bandwidth')}"
        )
    return f"run {label} has a {kind} event here"


def _first_field_diff(
    a: JsonDict, b: JsonDict, ignore: Sequence[str]
) -> Optional[Tuple[str, Any, Any]]:
    """First differing field of two events, in sorted field order."""
    for name in sorted(set(a) | set(b)):
        if name in ignore:
            continue
        va, vb = a.get(name), b.get(name)
        if va != vb:
            return name, va, vb
    return None


def _diff_events(
    ev_a: JsonDict, ev_b: JsonDict, run: int, ignore: Sequence[str]
) -> Optional[Divergence]:
    """Field-level divergence between two aligned events, if any."""
    hit = _first_field_diff(ev_a, ev_b, ignore)
    if hit is None:
        return None
    name, va, vb = hit
    kind = str(ev_a.get("event", ev_b.get("event", "?")))
    step = ev_a.get("step", ev_b.get("step"))
    if name == "transfers" or (kind == "step" and name in ("sends", "moves")):
        summary = (
            _event_summary(ev_b, "B") + "; " + _event_summary(ev_a, "A")
        )
    else:
        summary = f"earliest differing field is '{name}': A={va!r} B={vb!r}"
    return Divergence(
        run=run,
        kind=kind,
        step=int(step) if step is not None else None,
        field=name,
        a=va,
        b=vb,
        summary=summary,
    )


def _align_key(event: JsonDict) -> Tuple[str, Any]:
    return str(event.get("event", "?")), event.get("step")


def _diff_run(
    run_a: TraceRun, run_b: TraceRun, ignore: Sequence[str]
) -> Optional[Divergence]:
    """Earliest divergence within one run's aligned event sequences."""
    for ev_a, ev_b in zip(run_a.events, run_b.events):
        key_a, key_b = _align_key(ev_a), _align_key(ev_b)
        if key_a != key_b:
            # The sequences desynchronize here: one run stepped where
            # the other stalled/ended. That *is* the divergence.
            step = ev_a.get("step", ev_b.get("step"))
            return Divergence(
                run=run_a.run,
                kind=f"{key_a[0]} vs {key_b[0]}",
                step=int(step) if step is not None else None,
                field=None,
                a=key_a,
                b=key_b,
                summary=(
                    _event_summary(ev_b, "B") + "; " + _event_summary(ev_a, "A")
                ),
            )
        hit = _diff_events(ev_a, ev_b, run_a.run, ignore)
        if hit is not None:
            return hit
    if len(run_a.events) != len(run_b.events):
        longer, label = (
            (run_a, "A") if len(run_a.events) > len(run_b.events) else (run_b, "B")
        )
        extra = longer.events[min(len(run_a.events), len(run_b.events))]
        return Divergence(
            run=run_a.run,
            kind=str(extra.get("event", "?")),
            step=extra.get("step"),
            field=None,
            a=len(run_a.events),
            b=len(run_b.events),
            summary=(
                f"run {label} has {abs(len(run_a.events) - len(run_b.events))} "
                f"extra event(s), starting with: "
                + _event_summary(extra, label)
            ),
        )
    return None


def diff_traces(
    path_a: str, path_b: str, ignore_fields: Sequence[str] = ()
) -> TraceDiff:
    """Compare two trace files and localize their first divergence.

    ``ignore_fields`` names event fields excluded from comparison (e.g.
    ``("engine",)`` when diffing a live trace against a replayed one).
    """
    if filecmp.cmp(path_a, path_b, shallow=False):
        return TraceDiff(
            path_a=path_a, path_b=path_b, identical_bytes=True, divergence=None
        )
    header_a, runs_a = split_runs(read_events(path_a))
    header_b, runs_b = split_runs(read_events(path_b))
    if (header_a is None) != (header_b is None):
        present = "A" if header_a is not None else "B"
        return TraceDiff(
            path_a,
            path_b,
            identical_bytes=False,
            divergence=Divergence(
                run=-1,
                kind="trace_header",
                step=None,
                field=None,
                a=header_a,
                b=header_b,
                summary=f"only trace {present} has a trace_header",
            ),
        )
    if header_a is not None and header_b is not None:
        hit = _first_field_diff(header_a, header_b, ignore_fields)
        if hit is not None:
            name, va, vb = hit
            return TraceDiff(
                path_a,
                path_b,
                identical_bytes=False,
                divergence=Divergence(
                    run=-1,
                    kind="trace_header",
                    step=None,
                    field=name,
                    a=va,
                    b=vb,
                    summary=(
                        f"trace headers disagree on '{name}': "
                        f"A={va!r} B={vb!r}"
                    ),
                ),
            )
    if len(runs_a) != len(runs_b):
        return TraceDiff(
            path_a,
            path_b,
            identical_bytes=False,
            divergence=Divergence(
                run=min(len(runs_a), len(runs_b)),
                kind="run",
                step=None,
                field=None,
                a=len(runs_a),
                b=len(runs_b),
                summary=(
                    f"trace A has {len(runs_a)} run(s), trace B has "
                    f"{len(runs_b)}"
                ),
            ),
        )
    for run_a, run_b in zip(runs_a, runs_b):
        hit = _diff_run(run_a, run_b, ignore_fields)
        if hit is not None:
            return TraceDiff(
                path_a, path_b, identical_bytes=False, divergence=hit
            )
    return TraceDiff(path_a, path_b, identical_bytes=False, divergence=None)
