"""Causal structure of one traced run: dissemination forest, critical
path, per-transfer slack, and per-vertex-step blocking attribution.

A validated trace says *what* moved each timestep; this module derives
*why the run took as long as it did*.  Three structures, all computed by
replaying ``step.transfers`` with the same integer-mask arithmetic the
replay validator uses (and, like the validator, importing nothing from
the simulation kernel — see :mod:`repro.obs.analyze.runs`):

**Dissemination forest.**  Every *useful arrival* — a vertex gaining a
token it did not yet possess — has exactly one causal parent: the first
transfer, in the step's recorded emission order, that delivered the
token.  Chaining parents reaches an initial holder, so arrivals form a
forest rooted at the ``have`` sets (the critical-path view of optimal
dissemination in Mundinger/Weber/Weiss, arXiv:cs/0606110).

**Critical path.**  For a successful run the engine stops the moment
the last want is met, so the final step always delivers a wanted
arrival.  Walking that arrival's ancestor chain backwards — one *hop*
for each parent transfer, and a *wait segment* for the steps in which
the parent already held the token but the child had not yet received it
— tiles the timesteps ``0..makespan-1`` exactly once.  The path length
therefore equals the makespan by construction, and every transfer off
the path gets a non-negative *slack* (how many steps later it could
have happened without delaying completion).

**Blocking attribution.**  Each *idle vertex-step* — a vertex with
outstanding demand that gained none of it this step — is assigned
exactly one cause, checked in this order so the categories partition:

``waiting-for-token``
    No in-neighbor held any needed token at the start of the step; the
    tokens simply had not propagated close enough yet.
``arc-capacity-saturated``
    Some in-neighbor held a needed token, but every arc from such a
    holder ran at full capacity this step — bandwidth, not knowledge,
    was the binding constraint.
``knowledge-lag``
    (LOCD traces only.)  A needed token sat one hop away with spare arc
    capacity, yet was not sent: under §4 local knowledge the holder may
    not have known about the demand.
``no-useful-arc``
    The same one-hop-away-with-spare-capacity situation under a
    full-knowledge engine: the scheduler had a useful arc and did not
    use it (heuristic myopia, or a deliberate trade against bandwidth).

Dynamic-conditions traces (``engine: "dynamic"``) cannot be attributed:
the arc set changes every turn and only the engine knows it.  Callers
should skip those runs (see :mod:`repro.obs.analyze.attribution`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.analyze.runs import DecodedInstance, TraceRun, tokens_of

__all__ = [
    "BLOCKING_CATEGORIES",
    "Arrival",
    "CausalError",
    "CriticalPath",
    "PathHop",
    "RunForest",
    "WaitSegment",
    "blocking_table",
    "build_forest",
    "classify_block",
    "critical_path",
    "dominant_category",
    "run_blocking_summary",
    "transfer_slack",
]

#: The blocking causes, in the order :func:`classify_block` checks them
#: (first match wins, so they partition the idle vertex-steps).
BLOCKING_CATEGORIES = (
    "waiting-for-token",
    "arc-capacity-saturated",
    "knowledge-lag",
    "no-useful-arc",
)


class CausalError(ValueError):
    """A trace is too malformed to derive causal structure from.

    Carries the run index and, when localizable, the fault step —
    attribution fails loudly *at* the corruption, never past it.
    """

    def __init__(self, message: str, run: int, step: Optional[int] = None):
        where = f"run {run}"
        if step is not None:
            where += f" step {step}"
        super().__init__(f"{where}: {message}")
        self.run = run
        self.step = step


@dataclass(frozen=True)
class Arrival:
    """One useful arrival: ``vertex`` gained ``token`` at ``step`` via
    the parent transfer from ``src`` (emission-order-first, so the
    parent choice is deterministic and kernel-independent)."""

    vertex: int
    token: int
    step: int
    src: int


@dataclass
class RunForest:
    """The replayed causal structure of one run."""

    run: int
    engine: str
    heuristic: str
    instance: DecodedInstance
    #: ``(vertex, token) -> Arrival`` for every useful arrival.
    arrivals: Dict[Tuple[int, int], Arrival]
    #: Possession masks at the *start* of each step; index ``makespan``
    #: holds the final state.
    have_before: List[List[int]]
    #: Per step: tokens carried per arc, ``(src, dst) -> count``.
    arc_load: List[Dict[Tuple[int, int], int]]
    #: Per step: the recorded ``[src, dst, [tokens]]`` triples.
    transfers: List[List[Tuple[int, int, Tuple[int, ...]]]]
    makespan: int
    success: bool
    #: ``(src, cap)`` per vertex, from the declared arcs.
    in_arcs: List[List[Tuple[int, int]]]

    def acquired_at(self, vertex: int, token: int) -> int:
        """Step at which ``vertex`` first held ``token`` (-1 = initially)."""
        if self.instance.have_masks[vertex] >> token & 1:
            return -1
        arrival = self.arrivals.get((vertex, token))
        if arrival is None:
            raise KeyError(f"vertex {vertex} never acquired token {token}")
        return arrival.step


@dataclass(frozen=True)
class PathHop:
    """One critical-path transfer: ``token`` moved ``src -> dst`` at ``step``."""

    step: int
    src: int
    dst: int
    token: int


@dataclass(frozen=True)
class WaitSegment:
    """Consecutive steps ``first..last`` in which ``vertex`` was blocked
    waiting for ``token`` (-1 when nothing specific was awaited), with
    one blocking category per step."""

    vertex: int
    token: int
    first: int
    last: int
    categories: Tuple[str, ...]

    def __len__(self) -> int:
        return self.last - self.first + 1


@dataclass
class CriticalPath:
    """The backward blocking chain from the completing arrival.

    ``elements`` are in chronological order and tile the timesteps
    ``0..makespan-1`` exactly once, so :attr:`length` always equals the
    makespan — the invariant the property suite pins down.
    """

    target_vertex: int
    target_token: int
    elements: List[Union[PathHop, WaitSegment]] = field(default_factory=list)

    @property
    def hops(self) -> List[PathHop]:
        return [e for e in self.elements if isinstance(e, PathHop)]

    @property
    def wait_steps(self) -> int:
        return sum(len(e) for e in self.elements if isinstance(e, WaitSegment))

    @property
    def length(self) -> int:
        return len(self.hops) + self.wait_steps

    def category_counts(self) -> Dict[str, int]:
        """Wait steps per blocking category along the path."""
        counts = {c: 0 for c in BLOCKING_CATEGORIES}
        for e in self.elements:
            if isinstance(e, WaitSegment):
                for c in e.categories:
                    counts[c] += 1
        return {c: n for c, n in counts.items() if n}


def build_forest(run: TraceRun) -> RunForest:
    """Replay one run's transfers into its dissemination forest.

    Assumes the run already passed :func:`repro.obs.analyze.validate.
    validate_events` — structural gaps here raise :class:`CausalError`
    with the fault localized rather than producing a wrong forest.
    """
    if run.start is None:
        raise CausalError("run has no run_start event", run.run)
    payload = run.start.get("instance")
    if payload is None:
        raise CausalError("run_start carries no instance payload", run.run)
    try:
        instance = DecodedInstance.from_payload(payload)
    except ValueError as exc:
        raise CausalError(f"undecodable instance payload: {exc}", run.run)

    in_arcs: List[List[Tuple[int, int]]] = [
        [] for _ in range(instance.num_vertices)
    ]
    for (src, dst), cap in sorted(instance.capacities.items()):
        in_arcs[dst].append((src, cap))

    have = list(instance.have_masks)
    have_before: List[List[int]] = [list(have)]
    arrivals: Dict[Tuple[int, int], Arrival] = {}
    arc_load: List[Dict[Tuple[int, int], int]] = []
    transfers: List[List[Tuple[int, int, Tuple[int, ...]]]] = []
    for step_index, event in enumerate(run.steps):
        raw = event.get("transfers")
        if not isinstance(raw, list):
            raise CausalError(
                "step event carries no transfers list", run.run, step_index
            )
        load: Dict[Tuple[int, int], int] = {}
        triples: List[Tuple[int, int, Tuple[int, ...]]] = []
        new_this_step: Dict[int, int] = {}
        for entry in raw:
            src, dst, sent = int(entry[0]), int(entry[1]), entry[2]
            tokens = tuple(int(t) for t in sent)
            triples.append((src, dst, tokens))
            load[(src, dst)] = load.get((src, dst), 0) + len(tokens)
            for token in tokens:
                if have[dst] >> token & 1:
                    continue  # already possessed: a redundant send
                key = (dst, token)
                if key in arrivals:
                    continue  # a same-step duplicate; first sender is parent
                if not (have[src] >> token & 1):
                    raise CausalError(
                        f"transfer ({src}, {dst}) sends token {token} the "
                        f"sender did not hold (run the replay validator "
                        f"first)",
                        run.run,
                        step_index,
                    )
                arrivals[key] = Arrival(
                    vertex=dst, token=token, step=step_index, src=src
                )
                new_this_step[dst] = new_this_step.get(dst, 0) | (1 << token)
        for dst, mask in new_this_step.items():
            have[dst] |= mask
        have_before.append(list(have))
        arc_load.append(load)
        transfers.append(triples)

    end = run.end
    success = bool(end.get("success")) if end is not None else False
    return RunForest(
        run=run.run,
        engine=run.engine,
        heuristic=run.heuristic,
        instance=instance,
        arrivals=arrivals,
        have_before=have_before,
        arc_load=arc_load,
        transfers=transfers,
        makespan=len(run.steps),
        success=success,
        in_arcs=in_arcs,
    )


def classify_block(forest: RunForest, vertex: int, step: int, needed: int) -> str:
    """The blocking category of one ``(vertex, step)`` for a needed mask.

    Checked in :data:`BLOCKING_CATEGORIES` order, first match wins —
    that if/elif chain is what makes the categories a partition.
    """
    if not needed:
        # Nothing specific was awaited (degenerate tail of a handmade
        # trace): there was no useful work left for this vertex.
        return "no-useful-arc"
    have = forest.have_before[step]
    useful = [
        (src, cap)
        for src, cap in forest.in_arcs[vertex]
        if have[src] & needed
    ]
    if not useful:
        return "waiting-for-token"
    load = forest.arc_load[step]
    if all(load.get((src, vertex), 0) >= cap for src, cap in useful):
        return "arc-capacity-saturated"
    if forest.engine == "locd":
        return "knowledge-lag"
    return "no-useful-arc"


def blocking_table(forest: RunForest) -> Dict[Tuple[int, int], str]:
    """``(vertex, step) -> category`` for every idle vertex-step.

    A vertex-step is *idle* when the vertex still wanted tokens at the
    start of the step and gained none of them during it.  Together with
    the first-match classifier this yields the partition property the
    test suite asserts: every idle vertex-step appears exactly once,
    under exactly one category.
    """
    table: Dict[Tuple[int, int], str] = {}
    want = forest.instance.want_masks
    for step in range(forest.makespan):
        before = forest.have_before[step]
        after = forest.have_before[step + 1]
        for v in range(forest.instance.num_vertices):
            needed = want[v] & ~before[v]
            if not needed:
                continue
            if after[v] & needed:
                continue  # gained a wanted token: not idle
            table[(v, step)] = classify_block(forest, v, step, needed)
    return table


def _wait_categories(
    forest: RunForest, vertex: int, token: int, first: int, last: int
) -> Tuple[str, ...]:
    needed = 1 << token if token >= 0 else 0
    return tuple(
        classify_block(forest, vertex, step, needed)
        for step in range(first, last + 1)
    )


def _anchor_arrival(forest: RunForest) -> Optional[Arrival]:
    """The completing arrival: smallest wanted (vertex, token) arriving
    at the final step.  ``None`` when the final step delivered no wanted
    arrival (failed runs; handmade traces with wasted tail steps)."""
    if forest.makespan == 0:
        return None
    want = forest.instance.want_masks
    candidates = [
        a
        for a in forest.arrivals.values()
        if a.step == forest.makespan - 1 and want[a.vertex] >> a.token & 1
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda a: (a.vertex, a.token))


def _degenerate_target(forest: RunForest) -> Tuple[int, int]:
    """A (vertex, token) to pin the all-wait path of a failed run on:
    the smallest unmet vertex and its smallest missing wanted token."""
    final = forest.have_before[forest.makespan]
    for v in range(forest.instance.num_vertices):
        missing = forest.instance.want_masks[v] & ~final[v]
        if missing:
            return v, tokens_of(missing)[0]
    # Success but no final-step wanted arrival: wait on the completing
    # vertex/token with the latest arrival instead.
    want = forest.instance.want_masks
    latest = max(
        (
            a
            for a in forest.arrivals.values()
            if want[a.vertex] >> a.token & 1
        ),
        key=lambda a: (a.step, a.vertex, a.token),
        default=None,
    )
    if latest is not None:
        return latest.vertex, latest.token
    return 0, -1


def critical_path(forest: RunForest) -> CriticalPath:
    """Extract the dependency chain whose length equals the makespan.

    Successful engine runs get the real backward chain from the
    completing arrival.  Failed runs (and handmade traces whose final
    step delivers nothing wanted) get a degenerate chain that waits on
    the first unmet ``(vertex, token)`` for every remaining step — still
    of length ``makespan``, with each wait step attributed a cause.
    """
    anchor = _anchor_arrival(forest)
    if anchor is None:
        vertex, token = _degenerate_target(forest)
        path = CriticalPath(target_vertex=vertex, target_token=token)
        arrival = forest.arrivals.get((vertex, token))
        if arrival is not None and forest.makespan > arrival.step + 1:
            # Chain up to the arrival, then a wasted-tail wait segment.
            path.elements = _backward_chain(forest, arrival)
            path.elements.append(
                WaitSegment(
                    vertex=vertex,
                    token=-1,
                    first=arrival.step + 1,
                    last=forest.makespan - 1,
                    categories=_wait_categories(
                        forest, vertex, -1, arrival.step + 1, forest.makespan - 1
                    ),
                )
            )
        elif forest.makespan > 0:
            path.elements = [
                WaitSegment(
                    vertex=vertex,
                    token=token,
                    first=0,
                    last=forest.makespan - 1,
                    categories=_wait_categories(
                        forest, vertex, token, 0, forest.makespan - 1
                    ),
                )
            ]
        return path
    path = CriticalPath(target_vertex=anchor.vertex, target_token=anchor.token)
    path.elements = _backward_chain(forest, anchor)
    return path


def _backward_chain(
    forest: RunForest, anchor: Arrival
) -> List[Union[PathHop, WaitSegment]]:
    """Hops and wait segments covering steps ``0..anchor.step`` once."""
    elements: List[Union[PathHop, WaitSegment]] = []
    current: Optional[Arrival] = anchor
    while current is not None:
        acquired = forest.acquired_at(current.src, current.token)
        elements.append(
            PathHop(
                step=current.step,
                src=current.src,
                dst=current.vertex,
                token=current.token,
            )
        )
        if acquired + 1 <= current.step - 1:
            elements.append(
                WaitSegment(
                    vertex=current.vertex,
                    token=current.token,
                    first=acquired + 1,
                    last=current.step - 1,
                    categories=_wait_categories(
                        forest,
                        current.vertex,
                        current.token,
                        acquired + 1,
                        current.step - 1,
                    ),
                )
            )
        current = (
            forest.arrivals[(current.src, current.token)]
            if acquired >= 0
            else None
        )
    elements.reverse()
    return elements


def transfer_slack(forest: RunForest) -> Dict[Tuple[int, int, int], int]:
    """``(vertex, token, step) -> slack`` for every useful arrival.

    Slack is ``makespan − F(arrival)`` where ``F`` is the latest
    completion time the arrival feeds into: its own delivery deadline
    (``step + 1`` when the receiving vertex wanted the token) and,
    recursively, the ``F`` of every child arrival it later parented.
    Ancestors of the completing arrival carry ``F = makespan``, so
    every on-path transfer has slack exactly zero.
    """
    want = forest.instance.want_masks
    children: Dict[Tuple[int, int], List[Arrival]] = {}
    for arrival in forest.arrivals.values():
        acquired = forest.acquired_at(arrival.src, arrival.token)
        if acquired >= 0:
            parent = forest.arrivals[(arrival.src, arrival.token)]
            children.setdefault((parent.vertex, parent.token), []).append(
                arrival
            )
    f_value: Dict[Tuple[int, int], int] = {}
    ordered = sorted(
        forest.arrivals.values(), key=lambda a: a.step, reverse=True
    )
    for arrival in ordered:
        key = (arrival.vertex, arrival.token)
        candidates = [
            f_value[(c.vertex, c.token)] for c in children.get(key, ())
        ]
        if want[arrival.vertex] >> arrival.token & 1:
            candidates.append(arrival.step + 1)
        f_value[key] = max(candidates) if candidates else arrival.step + 1
    # Ancestors of the completing arrival reach F == makespan, so every
    # on-path transfer ends up with slack exactly zero; F <= makespan
    # always (a wanted delivery at the final step is step makespan-1,
    # giving deadline makespan), so slacks are non-negative.
    return {
        (a.vertex, a.token, a.step): forest.makespan
        - f_value[(a.vertex, a.token)]
        for a in forest.arrivals.values()
    }


def dominant_category(
    counts: Dict[str, int], default: str = "no-useful-arc"
) -> str:
    """The most frequent category, ties broken in declaration order."""
    best = default
    best_count = 0
    for category in BLOCKING_CATEGORIES:
        n = counts.get(category, 0)
        if n > best_count:
            best, best_count = category, n
    return best


# Re-exported for the anomaly scanner, which needs only the blocking
# table of one timeline, not the full attribution (no bounds, no core).
def run_blocking_summary(run: TraceRun) -> Dict[str, int]:
    """Idle vertex-steps per category for one run (forest + table)."""
    forest = build_forest(run)
    counts: Dict[str, int] = {}
    for category in blocking_table(forest).values():
        counts[category] = counts.get(category, 0) + 1
    return counts
