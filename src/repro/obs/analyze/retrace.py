"""Re-trace a finished schedule as if a tracing engine had produced it.

The frozen reference oracle (:mod:`repro.sim.reference`) predates the
tracing layer and must never change — but differential debugging wants
a reference *trace* to diff against a live engine trace.  The bridge is
:func:`retrace_run`: replay a completed :class:`~repro.core.schedule.
Schedule` through a fresh :class:`~repro.sim.state.SimState` and emit
events through the exact same helpers (:func:`repro.sim.engine.
emit_run_start` / :func:`~repro.sim.engine.emit_step_event`) in the
exact control-flow order of :meth:`repro.sim.Engine.run`.  Because the
incremental engine's schedules are byte-identical to the oracle's, the
re-trace of an oracle schedule is byte-identical to a live engine trace
of the same (problem, heuristic, seed) — except for the ``engine``
label, which honestly records where the schedule came from
(``trace-diff --ignore-fields engine`` masks it).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.problem import Problem
from repro.core.schedule import Schedule
from repro.obs.tracer import Tracer
from repro.sim.engine import emit_run_start, emit_step_event
from repro.sim.state import SimState

__all__ = ["retrace_run"]


def retrace_run(
    tracer: Tracer,
    problem: Problem,
    schedule: Schedule,
    success: bool,
    heuristic_name: str,
    engine: str = "sim",
    max_steps: Optional[int] = None,
) -> None:
    """Emit the trace a tracing engine would have produced for ``schedule``.

    ``engine`` is the label stamped into ``run_start`` (use
    ``"reference"`` for oracle schedules).  ``max_steps`` must match the
    producing engine's cap for byte-identity; the default mirrors
    :class:`repro.sim.Engine`.
    """
    if not tracer.enabled:
        return
    if max_steps is None:
        max_steps = 4 * max(problem.move_bound(), 1) + 64
    state = SimState(problem)
    emit_run_start(tracer, engine, problem, heuristic_name, state, max_steps)
    stalled_for = 0
    for step, timestep in enumerate(schedule.steps):
        version_before = state.version
        arrivals: Dict[int, int] = {}
        for (_src, dst), tokens in timestep.sends.items():
            prev = arrivals.get(dst)
            arrivals[dst] = tokens.mask if prev is None else prev | tokens.mask
        state.apply_arrivals(arrivals)
        progressed = state.version != version_before
        emit_step_event(tracer, problem, state, timestep, step, version_before)
        if state.satisfied():
            break
        if progressed:
            stalled_for = 0
            continue
        if not state.any_useful_arc():
            # The live engine raises StallError right after this emit, so
            # its trace ends here too (no run_end follows a terminal
            # stall) — but replayed schedules come from *completed* runs,
            # which never reach this state; emit and stop for parity.
            tracer.emit(
                "stall",
                {
                    "step": step,
                    "consecutive": stalled_for + 1,
                    "terminal": True,
                },
            )
            return
        if timestep:
            stalled_for = 0
        else:
            stalled_for += 1
            tracer.emit("stall", {"step": step, "consecutive": stalled_for})
    tracer.emit(
        "run_end",
        {
            "success": success,
            "makespan": schedule.makespan,
            "bandwidth": schedule.bandwidth,
        },
    )
