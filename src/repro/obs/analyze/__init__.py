"""Trace analytics: differential debugging, replay validation, trend gates.

Consumes the JSONL traces of :mod:`repro.obs` (see
``docs/OBSERVABILITY.md``) and answers the questions raw event streams
cannot:

* :func:`diff_traces` — where do two traces *first* diverge?
* :func:`validate_trace` — does a trace's claimed run actually satisfy
  the paper's schedule-validity invariants?
* :func:`attribute_trace` — *why* did a run take as long as it did?
  Dissemination forest, critical path, per-vertex-step blocking causes,
  and the lower-bound gap decomposition (see
  :mod:`repro.obs.analyze.causal` and
  :mod:`repro.obs.analyze.attribution`).
* :func:`chrome_trace` / :func:`dot_forest` — export a trace's causal
  structure for Chrome trace-viewer or Graphviz.
* :func:`compare_bench` — did any benchmark case regress between two
  ``BENCH_engine.json`` snapshots?
* :func:`scan_paths` — which runs of a sweep look pathological?
* :func:`retrace_run` — re-emit a finished schedule as a trace (the
  bridge that gives the untraced reference oracle a diffable trace).

This subpackage is deliberately *not* imported by ``repro.obs``'s
``__init__`` — the tracing layer must stay importable by the simulation
kernel, while :mod:`repro.obs.analyze.retrace` imports the kernel.
Import it explicitly: ``from repro.obs import analyze`` or
``from repro.obs.analyze import diff_traces``.  Layering within the
subpackage: :mod:`~repro.obs.analyze.causal` (like ``validate``) is
kernel- and core-free mask arithmetic; :mod:`~repro.obs.analyze.
attribution` adds :mod:`repro.core` for the §5 bounds; only ``retrace``
imports the simulator.
"""

from repro.obs.analyze.anomaly import (
    Anomaly,
    ScanThresholds,
    scan_events,
    scan_paths,
    scan_trace,
)
from repro.obs.analyze.attribution import (
    GAP_SLACK_KEY,
    AttributionError,
    AttributionReport,
    RunAttribution,
    SkippedRun,
    attribute_events,
    attribute_run,
    attribute_trace,
    summary_event,
)
from repro.obs.analyze.causal import (
    BLOCKING_CATEGORIES,
    Arrival,
    CausalError,
    CriticalPath,
    PathHop,
    RunForest,
    WaitSegment,
    blocking_table,
    build_forest,
    classify_block,
    critical_path,
    transfer_slack,
)
from repro.obs.analyze.diff import Divergence, TraceDiff, diff_traces
from repro.obs.analyze.export import chrome_trace, dot_forest
from repro.obs.analyze.retrace import retrace_run
from repro.obs.analyze.runs import DecodedInstance, TraceRun, split_runs
from repro.obs.analyze.trend import (
    CaseTrend,
    TrendReport,
    compare_bench,
    load_bench,
)
from repro.obs.analyze.validate import (
    ValidationReport,
    Violation,
    validate_events,
    validate_trace,
)

__all__ = [
    "Anomaly",
    "Arrival",
    "AttributionError",
    "AttributionReport",
    "BLOCKING_CATEGORIES",
    "CaseTrend",
    "CausalError",
    "CriticalPath",
    "DecodedInstance",
    "Divergence",
    "GAP_SLACK_KEY",
    "PathHop",
    "RunAttribution",
    "RunForest",
    "ScanThresholds",
    "SkippedRun",
    "TraceDiff",
    "TraceRun",
    "TrendReport",
    "ValidationReport",
    "Violation",
    "WaitSegment",
    "attribute_events",
    "attribute_run",
    "attribute_trace",
    "blocking_table",
    "build_forest",
    "chrome_trace",
    "classify_block",
    "compare_bench",
    "critical_path",
    "diff_traces",
    "dot_forest",
    "load_bench",
    "retrace_run",
    "scan_events",
    "scan_paths",
    "scan_trace",
    "split_runs",
    "summary_event",
    "transfer_slack",
    "validate_events",
    "validate_trace",
]
