"""Trace analytics: differential debugging, replay validation, trend gates.

Consumes the JSONL traces of :mod:`repro.obs` (see
``docs/OBSERVABILITY.md``) and answers the questions raw event streams
cannot:

* :func:`diff_traces` — where do two traces *first* diverge?
* :func:`validate_trace` — does a trace's claimed run actually satisfy
  the paper's schedule-validity invariants?
* :func:`compare_bench` — did any benchmark case regress between two
  ``BENCH_engine.json`` snapshots?
* :func:`scan_paths` — which runs of a sweep look pathological?
* :func:`retrace_run` — re-emit a finished schedule as a trace (the
  bridge that gives the untraced reference oracle a diffable trace).

This subpackage is deliberately *not* imported by ``repro.obs``'s
``__init__`` — the tracing layer must stay importable by the simulation
kernel, while :mod:`repro.obs.analyze.retrace` imports the kernel.
Import it explicitly: ``from repro.obs import analyze`` or
``from repro.obs.analyze import diff_traces``.
"""

from repro.obs.analyze.anomaly import (
    Anomaly,
    ScanThresholds,
    scan_events,
    scan_paths,
    scan_trace,
)
from repro.obs.analyze.diff import Divergence, TraceDiff, diff_traces
from repro.obs.analyze.retrace import retrace_run
from repro.obs.analyze.runs import DecodedInstance, TraceRun, split_runs
from repro.obs.analyze.trend import (
    CaseTrend,
    TrendReport,
    compare_bench,
    load_bench,
)
from repro.obs.analyze.validate import (
    ValidationReport,
    Violation,
    validate_events,
    validate_trace,
)

__all__ = [
    "Anomaly",
    "CaseTrend",
    "DecodedInstance",
    "Divergence",
    "ScanThresholds",
    "TraceDiff",
    "TraceRun",
    "TrendReport",
    "ValidationReport",
    "Violation",
    "compare_bench",
    "diff_traces",
    "load_bench",
    "retrace_run",
    "scan_events",
    "scan_paths",
    "scan_trace",
    "split_runs",
    "validate_events",
    "validate_trace",
]
