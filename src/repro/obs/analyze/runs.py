"""Shared trace-analytics plumbing: run splitting and instance decoding.

Every analyzer in this package starts the same way: take the flat event
stream of one trace file (:func:`repro.obs.read_events`) and regroup it
into per-run event sequences, then — for the replay validator and the
differ — decode the ``instance`` payload that ``run_start`` events carry
(the ``Problem.to_dict`` form) into the integer-mask representation the
analyzers compute with.

The decoder is deliberately *independent* of :mod:`repro.core` and
:mod:`repro.sim`: the replay validator re-implements the paper's §2
schedule-validity semantics from the raw JSON so that a kernel bug
cannot hide by also corrupting the checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

JsonDict = Dict[str, Any]

__all__ = [
    "DecodedInstance",
    "TraceRun",
    "mask_of",
    "split_runs",
    "tokens_of",
]


def mask_of(tokens: Iterable[int]) -> int:
    """Token ids to the bitmask the analyzers compute with."""
    mask = 0
    for t in tokens:
        mask |= 1 << int(t)
    return mask


def tokens_of(mask: int) -> List[int]:
    """Sorted token ids of a bitmask (inverse of :func:`mask_of`)."""
    out: List[int] = []
    t = 0
    while mask:
        if mask & 1:
            out.append(t)
        mask >>= 1
        t += 1
    return out


@dataclass
class TraceRun:
    """The events of one run within a trace, in emission order."""

    run: int
    start: Optional[JsonDict] = None
    steps: List[JsonDict] = field(default_factory=list)
    stalls: List[JsonDict] = field(default_factory=list)
    end: Optional[JsonDict] = None
    #: Run-scoped events in exact emission order (steps and stalls
    #: interleaved as recorded) — the differ compares this sequence.
    events: List[JsonDict] = field(default_factory=list)

    @property
    def heuristic(self) -> str:
        if self.start is None:
            return "?"
        return str(self.start.get("heuristic", "?"))

    @property
    def engine(self) -> str:
        if self.start is None:
            return "?"
        return str(self.start.get("engine", "?"))


def split_runs(
    events: Sequence[JsonDict],
) -> Tuple[Optional[JsonDict], List[TraceRun]]:
    """Group a trace's events into ``(trace_header, per-run sequences)``.

    Mirrors the grouping of :func:`repro.obs.report.load_timelines` but
    keeps the exact emission order per run, which the differ needs.
    ``sweep_point`` telemetry and run-ledger rows are ignored.
    """
    header: Optional[JsonDict] = None
    runs: Dict[int, TraceRun] = {}
    for event in events:
        kind = event["event"]
        if kind == "trace_header":
            if header is None:
                header = event
            continue
        if kind not in ("run_start", "step", "stall", "run_end"):
            continue
        run_index = int(event.get("run", 0))
        run = runs.get(run_index)
        if run is None:
            run = runs[run_index] = TraceRun(run=run_index)
        run.events.append(event)
        if kind == "run_start":
            run.start = event
        elif kind == "step":
            run.steps.append(event)
        elif kind == "stall":
            run.stalls.append(event)
        elif kind == "run_end":
            run.end = event
    return header, [runs[k] for k in sorted(runs)]


@dataclass(frozen=True)
class DecodedInstance:
    """The ``run_start`` instance payload in analyzer-native form."""

    name: str
    num_vertices: int
    num_tokens: int
    #: ``(src, dst) -> capacity`` for every declared arc.
    capacities: Dict[Tuple[int, int], int]
    #: Initial possession ``h(v)`` as one bitmask per vertex.
    have_masks: Tuple[int, ...]
    #: Demand ``w(v)`` as one bitmask per vertex.
    want_masks: Tuple[int, ...]

    @classmethod
    def from_payload(cls, data: Any) -> "DecodedInstance":
        """Decode a ``Problem.to_dict`` payload; raises ``ValueError``
        on anything structurally unusable."""
        if not isinstance(data, dict):
            raise ValueError("instance payload is not a JSON object")
        try:
            n = int(data["num_vertices"])
            m = int(data["num_tokens"])
            arcs = data["arcs"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"instance payload malformed: {exc}") from None
        capacities: Dict[Tuple[int, int], int] = {}
        for arc in arcs:
            src, dst, cap = (int(x) for x in arc)
            capacities[(src, dst)] = cap
        have = [0] * n
        want = [0] * n
        for target, key in ((have, "have"), (want, "want")):
            for v, tokens in data.get(key, {}).items():
                target[int(v)] = mask_of(tokens)
        return cls(
            name=str(data.get("name", "")),
            num_vertices=n,
            num_tokens=m,
            capacities=capacities,
            have_masks=tuple(have),
            want_masks=tuple(want),
        )

    def deficits(self, have_masks: Sequence[int]) -> List[int]:
        """Per-vertex wanted-but-missing counts for a possession state."""
        return [
            (self.want_masks[v] & ~have_masks[v]).bit_count()
            for v in range(self.num_vertices)
        ]
