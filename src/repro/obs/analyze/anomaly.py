"""Sweep-level anomaly scan: flag suspect runs across many traces.

A parameter sweep produces one trace per point; nobody reads them all.
:func:`scan_paths` walks a set of trace files (or directories of them)
and flags runs whose shape suggests something went wrong even if the
run nominally succeeded:

``stall-span``
    A maximal span of consecutive zero-gain timesteps at least
    ``stall_span`` long — the §4 local-knowledge pathology, or a
    heuristic spinning without progress.
``deficit-plateau``
    The total deficit sat at the same non-zero value for at least
    ``plateau_span`` consecutive steps. Subsumes stall spans when
    tokens circulate without reaching wanting vertices.
``util-collapse``
    Arc utilization stayed at or below ``util_floor`` for at least
    ``util_span`` consecutive steps — the network went quiet while
    demand remained.
``failed-run``
    The run ended with ``success: false``.
``truncated-run``
    The trace has no ``run_end`` for the run (crashed or interrupted).

Thresholds live in :class:`ScanThresholds`; the defaults are tuned for
the repo's small benchmark instances and every CLI flag maps onto one
field.

Span and failure anomalies additionally carry a *dominant blocking
cause* — the most frequent :data:`repro.obs.analyze.causal.
BLOCKING_CATEGORIES` entry among the span's idle vertex-steps, derived
from the same forest replay ``trace-attribute`` uses — so the scan (and
the ``watch`` dashboard on top of it) says not just *where* a run went
quiet but *why*.  Cause derivation is best-effort: traces that cannot
be replayed (pre-analytics schema, dynamic-conditions runs) simply
yield ``cause: None`` and the anomaly stands on its own.

Streaming scans (:class:`repro.obs.live.IncrementalScanner`) pass
``open_tail=True``: the *final* run of a still-growing trace is treated
as in progress — its missing ``run_end`` is expected, not a
``truncated-run`` — while every earlier run in the same file is checked
strictly.  A finalize pass with ``open_tail=False`` restores the
post-hoc verdict exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.analyze.causal import (
    CausalError,
    blocking_table,
    build_forest,
    dominant_category,
)
from repro.obs.analyze.runs import TraceRun
from repro.obs.events import read_events
from repro.obs.report import RunTimeline, load_timelines

__all__ = ["Anomaly", "ScanThresholds", "scan_events", "scan_paths", "scan_trace"]


@dataclass(frozen=True)
class ScanThresholds:
    """Knobs for what counts as anomalous."""

    #: Minimum length of a zero-gain span worth flagging.
    stall_span: int = 3
    #: Minimum length of a constant-non-zero-deficit plateau.
    plateau_span: int = 4
    #: Arc utilization at or below this counts as "quiet".
    util_floor: float = 0.02
    #: Minimum length of a quiet-network span.
    util_span: int = 3


@dataclass(frozen=True)
class Anomaly:
    """One suspect observation in one run of one trace."""

    path: str
    run: int
    heuristic: str
    kind: str
    #: First step of the anomalous span (None for run-level anomalies).
    step: int | None
    detail: str
    #: Dominant blocking cause over the span (a BLOCKING_CATEGORIES
    #: entry), or None when cause derivation was not possible.
    cause: str | None = None

    def render(self) -> str:
        where = f"{self.path} run {self.run} ({self.heuristic})"
        if self.step is not None:
            where += f" step {self.step}"
        line = f"{where}: [{self.kind}] {self.detail}"
        if self.cause is not None:
            line += f" -- dominant cause: {self.cause}"
        return line

    def as_dict(self) -> dict:
        """JSON-able view for ``--format json`` and the watch dashboard."""
        return {
            "path": self.path,
            "run": self.run,
            "heuristic": self.heuristic,
            "kind": self.kind,
            "step": self.step,
            "detail": self.detail,
            "cause": self.cause,
        }


def _constant_spans(values: Sequence[int]) -> List[tuple[int, int, int]]:
    """Maximal ``(first, last, value)`` spans of equal consecutive values."""
    spans: List[tuple[int, int, int]] = []
    for i, v in enumerate(values):
        if spans and spans[-1][2] == v and spans[-1][1] == i - 1:
            spans[-1] = (spans[-1][0], i, v)
        else:
            spans.append((i, i, v))
    return spans


def _run_blocking(timeline: RunTimeline) -> Dict[Tuple[int, int], str]:
    """Best-effort blocking table for one timeline; empty on any gap.

    Dynamic-conditions runs are excluded up front: their arc-level
    categories would be computed against the declared (static) arc set
    and could name the wrong cause with confidence.
    """
    if str(timeline.start.get("engine", "?")) == "dynamic":
        return {}
    try:
        forest = build_forest(
            TraceRun(
                run=timeline.run,
                start=timeline.start or None,
                steps=list(timeline.steps),
                end=timeline.end,
            )
        )
        return blocking_table(forest)
    except (CausalError, ValueError, KeyError, IndexError, TypeError):
        return {}


def _scan_run(
    timeline: RunTimeline,
    path: str,
    thresholds: ScanThresholds,
    open_tail: bool = False,
) -> List[Anomaly]:
    found: List[Anomaly] = []
    blocking: Optional[Dict[Tuple[int, int], str]] = None

    def span_cause(lo: int, hi: int) -> str | None:
        nonlocal blocking
        if blocking is None:
            blocking = _run_blocking(timeline)
        counts: Dict[str, int] = {}
        for (_vertex, step), category in blocking.items():
            if lo <= step <= hi:
                counts[category] = counts.get(category, 0) + 1
        return dominant_category(counts) if counts else None

    def flag(
        kind: str, step: int | None, detail: str, cause: str | None = None
    ) -> None:
        found.append(
            Anomaly(
                path=path,
                run=timeline.run,
                heuristic=timeline.heuristic,
                kind=kind,
                step=step,
                detail=detail,
                cause=cause,
            )
        )

    for lo, hi in timeline.stall_spans():
        length = hi - lo + 1
        if length >= thresholds.stall_span:
            flag(
                "stall-span",
                lo,
                f"{length} consecutive zero-gain steps [{lo}..{hi}]",
                cause=span_cause(lo, hi),
            )
    deficits = [d for _, d in timeline.deficit_curve()]
    steps = [s for s, _ in timeline.deficit_curve()]
    for lo, hi, value in _constant_spans(deficits):
        length = hi - lo + 1
        if value > 0 and length >= thresholds.plateau_span:
            flag(
                "deficit-plateau",
                steps[lo],
                f"deficit stuck at {value} for {length} steps "
                f"[{steps[lo]}..{steps[hi]}]",
                cause=span_cause(steps[lo], steps[hi]),
            )
    utils = [float(s.get("arc_util", 0.0)) for s in timeline.steps]
    quiet_lo: int | None = None
    for i, u in enumerate(utils + [1.0]):  # sentinel closes a trailing span
        if u <= thresholds.util_floor and deficits[i : i + 1] != [0]:
            if quiet_lo is None:
                quiet_lo = i
            continue
        if quiet_lo is not None:
            length = i - quiet_lo
            if length >= thresholds.util_span:
                flag(
                    "util-collapse",
                    steps[quiet_lo],
                    f"arc utilization <= {thresholds.util_floor:.0%} for "
                    f"{length} steps [{steps[quiet_lo]}..{steps[i - 1]}] "
                    f"with demand outstanding",
                    cause=span_cause(steps[quiet_lo], steps[i - 1]),
                )
            quiet_lo = None
    if timeline.end is None:
        if not open_tail:
            flag(
                "truncated-run",
                None,
                "no run_end event (crashed or interrupted?)",
            )
    elif not timeline.end.get("success"):
        flag(
            "failed-run",
            None,
            f"run ended unsatisfied after {timeline.end.get('makespan')} steps",
            cause=span_cause(0, len(timeline.steps)),
        )
    return found


def scan_events(
    events: Sequence[dict],
    path: str = "<events>",
    thresholds: ScanThresholds = ScanThresholds(),
    open_tail: bool = False,
) -> List[Anomaly]:
    """Scan one parsed event stream for anomalous runs.

    ``open_tail=True`` treats the final run as still in progress: its
    missing ``run_end`` is not flagged as ``truncated-run``.
    """
    found: List[Anomaly] = []
    timelines = load_timelines(events)
    for i, timeline in enumerate(timelines):
        last = i == len(timelines) - 1
        found.extend(
            _scan_run(timeline, path, thresholds, open_tail=open_tail and last)
        )
    return found


def scan_trace(
    path: str,
    thresholds: ScanThresholds = ScanThresholds(),
    open_tail: bool = False,
) -> List[Anomaly]:
    """Scan one trace file for anomalous runs."""
    return scan_events(
        read_events(path, tail=open_tail),
        path=path,
        thresholds=thresholds,
        open_tail=open_tail,
    )


def scan_paths(
    paths: Sequence[str],
    thresholds: ScanThresholds = ScanThresholds(),
    open_tail: bool = False,
) -> List[Anomaly]:
    """Scan trace files and/or directories of ``*.jsonl`` traces."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".jsonl")
            )
        else:
            files.append(path)
    found: List[Anomaly] = []
    for file in files:
        found.extend(scan_trace(file, thresholds, open_tail=open_tail))
    return found
