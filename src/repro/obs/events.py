"""The versioned observability event schema and its one canonical writer.

Every JSONL record the repository emits — per-timestep run traces from
the engines, per-point telemetry from the sweep executor — is an *event*:
a flat JSON object carrying ``schema_version`` (the integer schema
revision) and ``event`` (the record kind), plus kind-specific fields.
One schema means one toolchain: ``repro report`` renders traces, the
telemetry analysis notebooks read sweep rows, and both can live in the
same file without ambiguity.

Serialization is canonical — sorted keys, compact separators, ``\\n``
terminated — so an event stream is a deterministic function of its
payloads and byte-comparison of two traces is meaningful.  Nothing here
may reach for wall-clock time or process identity; events that need
those (sweep telemetry) receive them as explicit payload fields, and
run-trace events carry none so identical seeds yield identical bytes.

Event kinds
-----------
``trace_header``
    First line of a trace file: scenario identification (problem name,
    sizes, engine kind, seed or sweep-point coordinates).
``run_start`` / ``step`` / ``stall`` / ``run_end``
    One simulated run.  ``step`` carries the per-timestep dynamics the
    paper argues from: tokens moved and gained, the remaining per-vertex
    deficit, the holder-count histogram, and arc utilization.
``sweep_point``
    One executed (or cache-served) sweep grid point — the executor's
    telemetry row (see :mod:`repro.experiments.sweep`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Mapping, Optional, TextIO

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "EventWriter",
    "dump_event",
    "is_event",
    "iter_events",
    "make_event",
    "read_events",
]

#: Bump when a field changes meaning or is removed; readers dispatch on
#: it, and the converter in :mod:`repro.obs.convert` upgrades old files.
SCHEMA_VERSION = 1

#: The known event kinds, for validation and docs.
EVENT_KINDS = (
    "trace_header",
    "run_start",
    "step",
    "stall",
    "run_end",
    "sweep_point",
)

JsonDict = Dict[str, Any]


def make_event(kind: str, fields: Mapping[str, Any]) -> JsonDict:
    """Build one schema-stamped event dict.

    ``fields`` must not shadow the envelope keys; unknown kinds are
    rejected so typos fail at emission time, not at read time.
    """
    if kind not in EVENT_KINDS:
        raise ValueError(
            f"unknown event kind {kind!r}; known: {', '.join(EVENT_KINDS)}"
        )
    if "event" in fields or "schema_version" in fields:
        raise ValueError("event fields must not shadow the schema envelope")
    event: JsonDict = {"schema_version": SCHEMA_VERSION, "event": kind}
    event.update(fields)
    return event


def is_event(obj: Any) -> bool:
    """Whether ``obj`` is a schema-versioned event record."""
    return (
        isinstance(obj, dict)
        and isinstance(obj.get("schema_version"), int)
        and isinstance(obj.get("event"), str)
    )


def dump_event(event: Mapping[str, Any]) -> str:
    """Canonical single-line serialization (sorted keys, compact, no NaN).

    Every writer in the repository goes through this function, which is
    what makes byte-comparison of traces meaningful.
    """
    return json.dumps(
        event, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


class EventWriter:
    """Append-only JSONL writer over an open text handle.

    The writer owns serialization, never the handle's lifetime — callers
    (tracers, the sweep executor) decide when to open, flush, and close.
    """

    def __init__(self, handle: TextIO) -> None:
        self._handle = handle

    def write(self, event: Mapping[str, Any]) -> None:
        if not is_event(event):
            raise ValueError(
                "refusing to write a record without the schema envelope; "
                "build it with repro.obs.make_event"
            )
        self._handle.write(dump_event(event) + "\n")

    def flush(self) -> None:
        self._handle.flush()


def read_events(path: str, kind: Optional[str] = None) -> List[JsonDict]:
    """Load every event from a JSONL file (optionally one kind).

    Raises ``ValueError`` on a line that is not a schema-versioned event
    — feed legacy telemetry through :mod:`repro.obs.convert` first.
    """
    return list(iter_events(path, kind=kind))


def iter_events(path: str, kind: Optional[str] = None) -> Iterator[JsonDict]:
    """Stream events from a JSONL file without loading it whole."""
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            if not is_event(obj):
                raise ValueError(
                    f"{path}:{lineno}: record lacks the schema envelope "
                    f"(schema_version/event); convert legacy telemetry with "
                    f"`ocd-repro convert-telemetry`"
                )
            if kind is None or obj["event"] == kind:
                yield obj
