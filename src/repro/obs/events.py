"""The versioned observability event schema and its one canonical writer.

Every JSONL record the repository emits — per-timestep run traces from
the engines, per-point telemetry from the sweep executor — is an *event*:
a flat JSON object carrying ``schema_version`` (the integer schema
revision) and ``event`` (the record kind), plus kind-specific fields.
One schema means one toolchain: ``repro report`` renders traces, the
telemetry analysis notebooks read sweep rows, and both can live in the
same file without ambiguity.

Serialization is canonical — sorted keys, compact separators, ``\\n``
terminated — so an event stream is a deterministic function of its
payloads and byte-comparison of two traces is meaningful.  Nothing here
may reach for wall-clock time or process identity; events that need
those (sweep telemetry) receive them as explicit payload fields, and
run-trace events carry none so identical seeds yield identical bytes.

Event kinds
-----------
``trace_header``
    First line of a trace file: scenario identification (problem name,
    sizes, engine kind, seed or sweep-point coordinates).
``run_start`` / ``step`` / ``stall`` / ``run_end``
    One simulated run.  ``step`` carries the per-timestep dynamics the
    paper argues from: tokens moved and gained, the remaining per-vertex
    deficit, the holder-count histogram, and arc utilization.
``sweep_point``
    One executed (or cache-served) sweep grid point — the executor's
    telemetry row (see :mod:`repro.experiments.sweep`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, TextIO, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "EVENT_SCHEMAS",
    "EventSchema",
    "EventWriter",
    "dump_event",
    "is_event",
    "iter_events",
    "make_event",
    "read_events",
    "validate_event",
]

#: Bump when a field changes meaning or is removed; readers dispatch on
#: it, and the converter in :mod:`repro.obs.convert` upgrades old files.
SCHEMA_VERSION = 1

#: The known event kinds, for validation and docs.
EVENT_KINDS = (
    "trace_header",
    "run_start",
    "step",
    "stall",
    "run_end",
    "sweep_point",
)

JsonDict = Dict[str, Any]


@dataclass(frozen=True)
class EventSchema:
    """The field contract of one event kind.

    ``required`` fields appear in every event of the kind; ``optional``
    fields may appear (sink-stamped ``run`` indices, engine-specific
    extras like ``facts_learned``).  Types name the JSON shape each
    field serializes as — ``"str"``, ``"int"``, ``"float"``, ``"bool"``,
    ``"list"``, ``"dict"`` — with ``"float"`` accepting ints (an
    ``arc_util`` of exactly 0 serializes as ``0``).

    The registry below is the single source of truth for three
    consumers: :func:`validate_event` (runtime spot checks and tests),
    the static trace-contract rule OCD013 in :mod:`repro.checks` (every
    emission site is cross-referenced at lint time), and the schema
    table in ``docs/OBSERVABILITY.md``.
    """

    kind: str
    required: Mapping[str, str] = field(default_factory=dict)
    optional: Mapping[str, str] = field(default_factory=dict)

    def field_type(self, name: str) -> Optional[str]:
        """The declared type of a field, or None when unknown."""
        return self.required.get(name) or self.optional.get(name)


#: Fields every event may carry: the envelope plus the per-run index
#: sinks stamp on run-scoped events (see ``_RunCountingTracer``).
ENVELOPE_FIELDS: Dict[str, str] = {
    "schema_version": "int",
    "event": "str",
    "run": "int",
}

#: kind -> field contract.  Extend here *first* when an engine grows a
#: new field; OCD013 fails any emission site that drifts from this.
EVENT_SCHEMAS: Dict[str, EventSchema] = {
    schema.kind: schema
    for schema in (
        EventSchema(
            kind="trace_header",
            required={"seed": "int"},
            optional={
                "figure": "str",
                "kind": "str",
                "index": "int",
                "params": "dict",
                "family": "str",
                "size": "int",
                "tokens": "int",
                "scenario": "str",
                "heuristic": "str",
            },
        ),
        EventSchema(
            kind="run_start",
            required={
                "engine": "str",
                "heuristic": "str",
                "problem": "str",
                "n": "int",
                "tokens": "int",
                "arcs": "int",
                "max_steps": "int",
                "total_deficit": "int",
                "instance": "dict",
            },
            optional={
                # Bitplane count of the token universe (ceil(tokens/64));
                # lets trace analytics spot multi-plane runs without
                # re-deriving it from ``tokens``.
                "planes": "int",
            },
        ),
        EventSchema(
            kind="step",
            required={
                "step": "int",
                "sends": "int",
                "moves": "int",
                "gained": "int",
                "deficit": "int",
                "deficit_by_vertex": "list",
                "holder_hist": "list",
                "arc_util": "float",
                "transfers": "list",
            },
            optional={
                "facts_learned": "int",
                "arcs_up": "int",
            },
        ),
        EventSchema(
            kind="stall",
            required={"step": "int", "consecutive": "int"},
            optional={"terminal": "bool"},
        ),
        EventSchema(
            kind="run_end",
            required={"success": "bool", "makespan": "int", "bandwidth": "int"},
            optional={"knowledge_cost": "int"},
        ),
        EventSchema(
            kind="sweep_point",
            required={
                "figure": "str",
                "kind": "str",
                "index": "int",
                "seed": "int",
                "key": "str",
                "cache": "str",
                "wall_s": "float",
                "worker": "int",
                "retries": "int",
                "ok": "bool",
            },
            optional={
                "error": "str",
                "traceback": "str",
                "stats": "dict",
            },
        ),
    )
}

_TYPE_CHECKS: Dict[str, Tuple[type, ...]] = {
    "str": (str,),
    "int": (int,),
    "float": (float, int),
    "bool": (bool,),
    "list": (list, tuple),
    "dict": (dict,),
}


def _type_ok(declared: str, value: Any) -> bool:
    if declared in ("int", "float") and isinstance(value, bool):
        return False
    return isinstance(value, _TYPE_CHECKS[declared])


def validate_event(event: Mapping[str, Any]) -> List[str]:
    """Check one event against :data:`EVENT_SCHEMAS`; return problems.

    An empty list means the event conforms: known kind, all required
    fields present, no undeclared fields, every declared field of the
    declared type.  Off the hot path by design — the engines' emission
    sites are verified *statically* by OCD013; this function backs
    tests, fixtures, and ad-hoc trace audits.
    """
    if not is_event(event):
        return ["record lacks the schema envelope (schema_version/event)"]
    kind = event["event"]
    schema = EVENT_SCHEMAS.get(kind)
    if schema is None:
        return [f"unknown event kind {kind!r}"]
    problems: List[str] = []
    for name, declared in sorted(schema.required.items()):
        if name not in event:
            problems.append(f"{kind}: missing required field {name!r}")
    for name in sorted(event):
        if name in ENVELOPE_FIELDS:
            if not _type_ok(ENVELOPE_FIELDS[name], event[name]):
                problems.append(
                    f"{kind}: envelope field {name!r} is not "
                    f"{ENVELOPE_FIELDS[name]}: {event[name]!r}"
                )
            continue
        declared = schema.field_type(name)
        if declared is None:
            problems.append(f"{kind}: undeclared field {name!r}")
        elif not _type_ok(declared, event[name]):
            problems.append(
                f"{kind}: field {name!r} is not {declared}: {event[name]!r}"
            )
    return problems


def make_event(kind: str, fields: Mapping[str, Any]) -> JsonDict:
    """Build one schema-stamped event dict.

    ``fields`` must not shadow the envelope keys; unknown kinds are
    rejected so typos fail at emission time, not at read time.
    """
    if kind not in EVENT_KINDS:
        raise ValueError(
            f"unknown event kind {kind!r}; known: {', '.join(EVENT_KINDS)}"
        )
    if "event" in fields or "schema_version" in fields:
        raise ValueError("event fields must not shadow the schema envelope")
    event: JsonDict = {"schema_version": SCHEMA_VERSION, "event": kind}
    event.update(fields)
    return event


def is_event(obj: Any) -> bool:
    """Whether ``obj`` is a schema-versioned event record."""
    return (
        isinstance(obj, dict)
        and isinstance(obj.get("schema_version"), int)
        and isinstance(obj.get("event"), str)
    )


def dump_event(event: Mapping[str, Any]) -> str:
    """Canonical single-line serialization (sorted keys, compact, no NaN).

    Every writer in the repository goes through this function, which is
    what makes byte-comparison of traces meaningful.
    """
    return json.dumps(
        event, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


class EventWriter:
    """Append-only JSONL writer over an open text handle.

    The writer owns serialization, never the handle's lifetime — callers
    (tracers, the sweep executor) decide when to open, flush, and close.
    """

    def __init__(self, handle: TextIO) -> None:
        self._handle = handle

    def write(self, event: Mapping[str, Any]) -> None:
        if not is_event(event):
            raise ValueError(
                "refusing to write a record without the schema envelope; "
                "build it with repro.obs.make_event"
            )
        self._handle.write(dump_event(event) + "\n")

    def flush(self) -> None:
        self._handle.flush()


def read_events(path: str, kind: Optional[str] = None) -> List[JsonDict]:
    """Load every event from a JSONL file (optionally one kind).

    Raises ``ValueError`` on a line that is not a schema-versioned event
    — feed legacy telemetry through :mod:`repro.obs.convert` first.
    """
    return list(iter_events(path, kind=kind))


def iter_events(path: str, kind: Optional[str] = None) -> Iterator[JsonDict]:
    """Stream events from a JSONL file without loading it whole."""
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            if not is_event(obj):
                raise ValueError(
                    f"{path}:{lineno}: record lacks the schema envelope "
                    f"(schema_version/event); convert legacy telemetry with "
                    f"`ocd-repro convert-telemetry`"
                )
            if kind is None or obj["event"] == kind:
                yield obj
