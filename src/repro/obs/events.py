"""The versioned observability event schema and its one canonical writer.

Every JSONL record the repository emits — per-timestep run traces from
the engines, per-point telemetry from the sweep executor — is an *event*:
a flat JSON object carrying ``schema_version`` (the integer schema
revision) and ``event`` (the record kind), plus kind-specific fields.
One schema means one toolchain: ``repro report`` renders traces, the
telemetry analysis notebooks read sweep rows, and both can live in the
same file without ambiguity.

Serialization is canonical — sorted keys, compact separators, ``\\n``
terminated — so an event stream is a deterministic function of its
payloads and byte-comparison of two traces is meaningful.  Nothing here
may reach for wall-clock time or process identity; events that need
those (sweep telemetry) receive them as explicit payload fields, and
run-trace events carry none so identical seeds yield identical bytes.

Event kinds
-----------
``trace_header``
    First line of a trace file: scenario identification (problem name,
    sizes, engine kind, seed or sweep-point coordinates).
``run_start`` / ``step`` / ``stall`` / ``run_end``
    One simulated run.  ``step`` carries the per-timestep dynamics the
    paper argues from: tokens moved and gained, the remaining per-vertex
    deficit, the holder-count histogram, and arc utilization.
``sweep_point``
    One executed (or cache-served) sweep grid point — the executor's
    telemetry row (see :mod:`repro.experiments.sweep`).
``run_attribution``
    One run's *derived* makespan attribution — critical-path shape,
    blocking-cause totals, and the lower-bound gap decomposition — as
    produced by :mod:`repro.obs.analyze.attribution`.  Engines never
    emit it: it is computed post hoc from a trace's own events, and
    appears only in ``trace-attribute`` output streams.
``sweep_start`` / ``point_start`` / ``point_heartbeat`` / ``point_end``
    / ``sweep_end``
    The live *run ledger* (:mod:`repro.obs.live`): the sweep executor's
    append-only status stream for in-flight monitoring.  Ledger events
    are the one place wall-clock and resource fields are allowed —
    they never appear in trace files, which stay byte-identical with
    monitoring on or off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, TextIO, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "EVENT_SCHEMAS",
    "EventSchema",
    "EventWriter",
    "dump_event",
    "is_event",
    "iter_events",
    "make_event",
    "read_events",
    "read_events_tail",
    "validate_event",
]

#: Bump when a field changes meaning or is removed; readers dispatch on
#: it, and the converter in :mod:`repro.obs.convert` upgrades old files.
SCHEMA_VERSION = 1

#: The known event kinds, for validation and docs.
EVENT_KINDS = (
    "trace_header",
    "run_start",
    "step",
    "stall",
    "run_end",
    "sweep_point",
    "sweep_start",
    "point_start",
    "point_heartbeat",
    "point_end",
    "sweep_end",
    "run_attribution",
)

JsonDict = Dict[str, Any]


@dataclass(frozen=True)
class EventSchema:
    """The field contract of one event kind.

    ``required`` fields appear in every event of the kind; ``optional``
    fields may appear (sink-stamped ``run`` indices, engine-specific
    extras like ``facts_learned``).  Types name the JSON shape each
    field serializes as — ``"str"``, ``"int"``, ``"float"``, ``"bool"``,
    ``"list"``, ``"dict"`` — with ``"float"`` accepting ints (an
    ``arc_util`` of exactly 0 serializes as ``0``).

    The registry below is the single source of truth for three
    consumers: :func:`validate_event` (runtime spot checks and tests),
    the static trace-contract rule OCD013 in :mod:`repro.checks` (every
    emission site is cross-referenced at lint time), and the schema
    table in ``docs/OBSERVABILITY.md``.
    """

    kind: str
    required: Mapping[str, str] = field(default_factory=dict)
    optional: Mapping[str, str] = field(default_factory=dict)

    def field_type(self, name: str) -> Optional[str]:
        """The declared type of a field, or None when unknown."""
        return self.required.get(name) or self.optional.get(name)


#: Fields every event may carry: the envelope plus the per-run index
#: sinks stamp on run-scoped events (see ``_RunCountingTracer``).
ENVELOPE_FIELDS: Dict[str, str] = {
    "schema_version": "int",
    "event": "str",
    "run": "int",
}

#: kind -> field contract.  Extend here *first* when an engine grows a
#: new field; OCD013 fails any emission site that drifts from this.
EVENT_SCHEMAS: Dict[str, EventSchema] = {
    schema.kind: schema
    for schema in (
        EventSchema(
            kind="trace_header",
            required={"seed": "int"},
            optional={
                "figure": "str",
                "kind": "str",
                "index": "int",
                "params": "dict",
                "family": "str",
                "size": "int",
                "tokens": "int",
                "scenario": "str",
                "heuristic": "str",
            },
        ),
        EventSchema(
            kind="run_start",
            required={
                "engine": "str",
                "heuristic": "str",
                "problem": "str",
                "n": "int",
                "tokens": "int",
                "arcs": "int",
                "max_steps": "int",
                "total_deficit": "int",
                "instance": "dict",
            },
            optional={
                # Bitplane count of the token universe (ceil(tokens/64));
                # lets trace analytics spot multi-plane runs without
                # re-deriving it from ``tokens``.
                "planes": "int",
            },
        ),
        EventSchema(
            kind="step",
            required={
                "step": "int",
                "sends": "int",
                "moves": "int",
                "gained": "int",
                "deficit": "int",
                "deficit_by_vertex": "list",
                "holder_hist": "list",
                "arc_util": "float",
                "transfers": "list",
            },
            optional={
                "facts_learned": "int",
                "arcs_up": "int",
            },
        ),
        EventSchema(
            kind="stall",
            required={"step": "int", "consecutive": "int"},
            optional={"terminal": "bool"},
        ),
        EventSchema(
            kind="run_end",
            required={"success": "bool", "makespan": "int", "bandwidth": "int"},
            optional={"knowledge_cost": "int"},
        ),
        # -- run-ledger kinds (repro.obs.live) -------------------------
        # The only events allowed to carry wall-clock (`*_unix`, `*_s`)
        # and resource (`maxrss_kb`, `cpu_s`) fields: the ledger is a
        # separate operational stream, never part of a trace file.
        EventSchema(
            kind="sweep_start",
            required={
                "figure": "str",
                "points": "int",
                "workers": "int",
                "started_unix": "float",
            },
            optional={"trace_dir": "str", "heartbeat_s": "float"},
        ),
        EventSchema(
            kind="point_start",
            required={
                "figure": "str",
                "kind": "str",
                "index": "int",
                "seed": "int",
                "attempt": "int",
                "worker": "int",
                "started_unix": "float",
            },
        ),
        EventSchema(
            kind="point_heartbeat",
            required={
                "figure": "str",
                "kind": "str",
                "index": "int",
                "attempt": "int",
                "worker": "int",
                "elapsed_s": "float",
            },
            optional={"maxrss_kb": "int", "cpu_s": "float"},
        ),
        EventSchema(
            kind="point_end",
            required={
                "figure": "str",
                "kind": "str",
                "index": "int",
                "seed": "int",
                "attempt": "int",
                "worker": "int",
                "ok": "bool",
                "cache": "str",
                "wall_s": "float",
            },
            optional={"error": "str", "maxrss_kb": "int", "cpu_s": "float"},
        ),
        EventSchema(
            kind="sweep_end",
            required={
                "figure": "str",
                "points": "int",
                "done": "int",
                "failed": "int",
                "cached": "int",
                "ok": "bool",
                "wall_s": "float",
            },
            optional={"profile": "dict"},
        ),
        # -- derived analytics kinds (repro.obs.analyze) ---------------
        # Never emitted by an engine: computed post hoc from a trace's
        # own run events, so attribution output is itself a valid event
        # stream any schema-aware consumer can read.
        EventSchema(
            kind="run_attribution",
            required={
                "engine": "str",
                "heuristic": "str",
                "problem": "str",
                "makespan": "int",
                "success": "bool",
                "bound_lookahead": "int",
                "bound_diameter": "int",
                "gap": "int",
                "gap_terms": "dict",
                "blocking": "dict",
                "path_length": "int",
                "path_hops": "int",
                "path_wait_steps": "int",
                "dominant_cause": "str",
                "arrivals": "int",
                "zero_slack": "int",
                "max_slack": "int",
            },
        ),
        EventSchema(
            kind="sweep_point",
            required={
                "figure": "str",
                "kind": "str",
                "index": "int",
                "seed": "int",
                "key": "str",
                "cache": "str",
                "wall_s": "float",
                "worker": "int",
                "retries": "int",
                "ok": "bool",
            },
            optional={
                "error": "str",
                "traceback": "str",
                "stats": "dict",
            },
        ),
    )
}

_TYPE_CHECKS: Dict[str, Tuple[type, ...]] = {
    "str": (str,),
    "int": (int,),
    "float": (float, int),
    "bool": (bool,),
    "list": (list, tuple),
    "dict": (dict,),
}


def _type_ok(declared: str, value: Any) -> bool:
    if declared in ("int", "float") and isinstance(value, bool):
        return False
    return isinstance(value, _TYPE_CHECKS[declared])


def validate_event(event: Mapping[str, Any]) -> List[str]:
    """Check one event against :data:`EVENT_SCHEMAS`; return problems.

    An empty list means the event conforms: known kind, all required
    fields present, no undeclared fields, every declared field of the
    declared type.  Off the hot path by design — the engines' emission
    sites are verified *statically* by OCD013; this function backs
    tests, fixtures, and ad-hoc trace audits.
    """
    if not is_event(event):
        return ["record lacks the schema envelope (schema_version/event)"]
    kind = event["event"]
    schema = EVENT_SCHEMAS.get(kind)
    if schema is None:
        return [f"unknown event kind {kind!r}"]
    problems: List[str] = []
    for name, declared in sorted(schema.required.items()):
        if name not in event:
            problems.append(f"{kind}: missing required field {name!r}")
    for name in sorted(event):
        if name in ENVELOPE_FIELDS:
            if not _type_ok(ENVELOPE_FIELDS[name], event[name]):
                problems.append(
                    f"{kind}: envelope field {name!r} is not "
                    f"{ENVELOPE_FIELDS[name]}: {event[name]!r}"
                )
            continue
        declared = schema.field_type(name)
        if declared is None:
            problems.append(f"{kind}: undeclared field {name!r}")
        elif not _type_ok(declared, event[name]):
            problems.append(
                f"{kind}: field {name!r} is not {declared}: {event[name]!r}"
            )
    return problems


def make_event(kind: str, fields: Mapping[str, Any]) -> JsonDict:
    """Build one schema-stamped event dict.

    ``fields`` must not shadow the envelope keys; unknown kinds are
    rejected so typos fail at emission time, not at read time.
    """
    if kind not in EVENT_KINDS:
        raise ValueError(
            f"unknown event kind {kind!r}; known: {', '.join(EVENT_KINDS)}"
        )
    if "event" in fields or "schema_version" in fields:
        raise ValueError("event fields must not shadow the schema envelope")
    event: JsonDict = {"schema_version": SCHEMA_VERSION, "event": kind}
    event.update(fields)
    return event


def is_event(obj: Any) -> bool:
    """Whether ``obj`` is a schema-versioned event record."""
    return (
        isinstance(obj, dict)
        and isinstance(obj.get("schema_version"), int)
        and isinstance(obj.get("event"), str)
    )


def dump_event(event: Mapping[str, Any]) -> str:
    """Canonical single-line serialization (sorted keys, compact, no NaN).

    Every writer in the repository goes through this function, which is
    what makes byte-comparison of traces meaningful.
    """
    return json.dumps(
        event, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


class EventWriter:
    """Append-only JSONL writer over an open text handle.

    The writer owns serialization, never the handle's lifetime — callers
    (tracers, the sweep executor) decide when to open, flush, and close.
    """

    def __init__(self, handle: TextIO) -> None:
        self._handle = handle

    def write(self, event: Mapping[str, Any]) -> None:
        if not is_event(event):
            raise ValueError(
                "refusing to write a record without the schema envelope; "
                "build it with repro.obs.make_event"
            )
        self._handle.write(dump_event(event) + "\n")

    def flush(self) -> None:
        self._handle.flush()


def read_events(
    path: str, kind: Optional[str] = None, tail: bool = False
) -> List[JsonDict]:
    """Load every event from a JSONL file (optionally one kind).

    Raises ``ValueError`` on a line that is not a schema-versioned event
    — feed legacy telemetry through :mod:`repro.obs.convert` first.
    With ``tail=True`` a trailing *partial* line (no terminating
    newline — a writer mid-append, or a killed run's truncated flush)
    is silently ignored instead of raising, so followers and analytics
    can read a file that is still growing.
    """
    return list(iter_events(path, kind=kind, tail=tail))


def iter_events(
    path: str, kind: Optional[str] = None, tail: bool = False
) -> Iterator[JsonDict]:
    """Stream events from a JSONL file without loading it whole.

    ``tail=True`` tolerates a trailing partial line (see
    :func:`read_events`); a newline-*terminated* line that is not valid
    JSON still raises — that is corruption, not an in-progress write.
    """
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            if tail and not raw.endswith("\n"):
                return  # trailing partial line: still being written
            line = raw.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            if not is_event(obj):
                raise ValueError(
                    f"{path}:{lineno}: record lacks the schema envelope "
                    f"(schema_version/event); convert legacy telemetry with "
                    f"`ocd-repro convert-telemetry`"
                )
            if kind is None or obj["event"] == kind:
                yield obj


def read_events_tail(
    path: str, start: int = 0, kind: Optional[str] = None
) -> Tuple[List[JsonDict], int]:
    """Read the complete events appended after byte offset ``start``.

    The follower primitive behind :mod:`repro.obs.live`: returns the
    events of every newline-terminated line from ``start`` onward plus
    the *clean* byte offset — the position just past the last complete
    line, which the caller passes back as the next ``start``.  A
    trailing partial line is left for the next poll, so incremental
    reads over a growing file never see a torn record.
    """
    with open(path, "rb") as handle:
        handle.seek(start)
        blob = handle.read()
    end = blob.rfind(b"\n")
    if end < 0:
        return [], start
    clean = blob[: end + 1]
    events: List[JsonDict] = []
    for raw in clean.split(b"\n")[:-1]:
        line = raw.strip()
        if not line:
            continue
        try:
            obj = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValueError(
                f"{path}@{start}: complete line is not JSON: {exc}"
            ) from None
        if not is_event(obj):
            raise ValueError(
                f"{path}@{start}: record lacks the schema envelope "
                f"(schema_version/event)"
            )
        if kind is None or obj["event"] == kind:
            events.append(obj)
    return events, start + len(clean)
