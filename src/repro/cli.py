"""Command-line interface.

Two halves:

* reproduction — regenerate the paper's figures::

      ocd-repro list
      ocd-repro run fig4 [--paper-scale] [--csv-dir out/]
      ocd-repro run all --paper-scale --csv-dir results/

* toolkit — work with OCD instances as JSON files::

      ocd-repro generate --family random --out problem.json
      ocd-repro solve problem.json
      ocd-repro simulate problem.json --heuristic local --render
      ocd-repro compare problem.json

(equivalently ``python -m repro ...``).  Problem files are the
``Problem.to_dict`` JSON form.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import List, Optional

from repro.core.problem import Problem

__all__ = ["main"]

_GENERATE_FAMILIES = ("random", "bottleneck", "dag", "spread")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ocd-repro",
        description=(
            "Reproduction of 'The Overlay Network Content Distribution "
            "Problem' (Killian et al., 2005): regenerate the evaluation "
            "figures, or solve/simulate OCD instances."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (figure number) or 'all'")
    run.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full parameters (minutes instead of seconds)",
    )
    run.add_argument(
        "--csv-dir",
        default=None,
        help="also write each experiment's rows to <dir>/<id>.csv",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan sweep points out over N worker processes (default: serial; "
        "output is bit-identical either way)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache",
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="recompute every point even when a cached result exists",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="result cache root (default results/cache, or $REPRO_CACHE_DIR)",
    )
    run.add_argument(
        "--telemetry",
        default=None,
        help="append per-point telemetry JSONL here "
        "(default <cache-dir>/telemetry.jsonl)",
    )

    generate = sub.add_parser(
        "generate", help="generate a random OCD instance as JSON"
    )
    generate.add_argument("--family", choices=_GENERATE_FAMILIES, default="random")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--size", type=int, default=6, help="approximate vertex count"
    )
    generate.add_argument("--tokens", type=int, default=3)
    generate.add_argument(
        "--out", default="-", help="output path ('-' for stdout)"
    )

    solve = sub.add_parser(
        "solve", help="exact optima for a small instance (JSON file)"
    )
    solve.add_argument("problem", help="path to a Problem JSON file")

    simulate = sub.add_parser("simulate", help="run one heuristic on an instance")
    simulate.add_argument("problem", help="path to a Problem JSON file")
    simulate.add_argument(
        "--heuristic",
        default="local",
        help="round_robin | random | local | bandwidth | global | sequential",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--render",
        action="store_true",
        help="print the pruned schedule step by step (small instances)",
    )

    compare = sub.add_parser(
        "compare", help="all heuristics x all metrics on an instance"
    )
    compare.add_argument("problem", help="path to a Problem JSON file")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--with-sequential",
        action="store_true",
        help="include the streaming (in-order) heuristic",
    )
    return parser


def _load_problem(path: str) -> Problem:
    with open(path) as handle:
        return Problem.from_dict(json.load(handle))


def _cmd_list() -> int:
    from repro.experiments import ALL_EXPERIMENTS

    for name in sorted(ALL_EXPERIMENTS):
        print(name)
    return 0


def _cmd_run(args) -> int:
    from dataclasses import replace

    from repro.experiments import (
        ALL_EXPERIMENTS,
        PAPER,
        QUICK,
        Executor,
        SweepError,
        default_executor_config,
    )

    if args.experiment != "all" and args.experiment not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{', '.join(sorted(ALL_EXPERIMENTS))} or 'all'",
            file=sys.stderr,
        )
        return 2
    scale = PAPER if args.paper_scale else QUICK
    config = default_executor_config(
        workers=args.workers,
        use_cache=False if args.no_cache else None,
        force=True if args.force else None,
        cache_dir=args.cache_dir,
    )
    if args.telemetry is not None:
        config = replace(config, telemetry_path=args.telemetry)
    elif config.use_cache:
        config = config.with_telemetry_default()
    executor = Executor(config)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.perf_counter()
        try:
            result = ALL_EXPERIMENTS[name](scale, executor=executor)
        except SweepError as error:
            print(f"{name} failed:\n{error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        print(result.to_text())
        print(f"({name} completed in {elapsed:.1f}s at {scale.name} scale)\n")
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
            path = os.path.join(args.csv_dir, f"{name}.csv")
            result.to_csv(path)
            print(f"wrote {path}\n")
    return 0


def _cmd_generate(args) -> int:
    from repro.topology.generators import (
        adversarial_spread_instance,
        bottleneck_instance,
        dag_instance,
        random_instance,
    )

    rng = random.Random(args.seed)
    if args.family == "random":
        problem = random_instance(
            rng, max_vertices=max(2, args.size), max_tokens=max(1, args.tokens)
        )
    elif args.family == "bottleneck":
        problem = bottleneck_instance(
            rng, cluster_size=max(1, args.size // 2), num_tokens=max(1, args.tokens)
        )
    elif args.family == "dag":
        problem = dag_instance(
            rng, num_vertices=max(2, args.size), num_tokens=max(1, args.tokens)
        )
    else:
        problem = adversarial_spread_instance(
            rng, num_vertices=max(2, args.size), num_tokens=max(1, args.tokens)
        )
    payload = json.dumps(problem.to_dict(), indent=2)
    if args.out == "-":
        print(payload)
    else:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}: {problem}")
    return 0


def _cmd_solve(args) -> int:
    from repro.core.bounds import remaining_bandwidth, remaining_timesteps
    from repro.exact import (
        min_bandwidth_exact,
        solve_eocd_ilp,
        solve_focd_bnb,
    )

    problem = _load_problem(args.problem)
    print(f"instance: {problem}")
    if not problem.is_satisfiable():
        print("unsatisfiable: some wanted token cannot reach its wanter")
        return 1
    print(
        f"counting bounds: >= {remaining_timesteps(problem)} timesteps, "
        f">= {remaining_bandwidth(problem)} moves"
    )
    optimum, witness = solve_focd_bnb(problem)
    print(f"optimal makespan (FOCD): {optimum} timesteps")
    min_bw = min_bandwidth_exact(problem)
    print(f"optimal bandwidth (EOCD): {min_bw} moves")
    hybrid = solve_eocd_ilp(problem, optimum)
    print(
        f"min bandwidth among fastest schedules: {hybrid.bandwidth} moves "
        f"at {optimum} timesteps"
    )
    if hybrid.bandwidth > min_bw:
        print("note: time and bandwidth optima conflict on this instance")
    return 0


def _cmd_simulate(args) -> int:
    from repro.core.pruning import prune_schedule
    from repro.heuristics import HEURISTIC_FACTORIES, SequentialHeuristic
    from repro.sim import run_heuristic, schedule_to_text

    problem = _load_problem(args.problem)
    if args.heuristic == "sequential":
        heuristic = SequentialHeuristic()
    elif args.heuristic in HEURISTIC_FACTORIES:
        heuristic = HEURISTIC_FACTORIES[args.heuristic]()
    else:
        print(
            f"unknown heuristic {args.heuristic!r}; choose from "
            f"{', '.join(sorted(HEURISTIC_FACTORIES))}, sequential",
            file=sys.stderr,
        )
        return 2
    result = run_heuristic(problem, heuristic, seed=args.seed)
    pruned, stats = prune_schedule(problem, result.schedule)
    print(
        f"{heuristic.name} on {problem}: success={result.success} "
        f"makespan={result.makespan} bandwidth={result.bandwidth} "
        f"(pruned {pruned.bandwidth})"
    )
    if args.render:
        print(schedule_to_text(problem, pruned))
    return 0 if result.success else 1


def _cmd_compare(args) -> int:
    from repro.analysis import compare_heuristics
    from repro.experiments.report import format_table
    from repro.heuristics import SequentialHeuristic, standard_heuristics

    problem = _load_problem(args.problem)
    field = standard_heuristics()
    if args.with_sequential:
        field.append(SequentialHeuristic())
    rows = compare_heuristics(problem, heuristics=field, seed=args.seed)
    print(f"instance: {problem}")
    print(format_table([row.as_dict() for row in rows]))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
