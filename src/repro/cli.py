"""Command-line interface.

Two halves:

* reproduction — regenerate the paper's figures::

      ocd-repro list
      ocd-repro run fig4 [--paper-scale] [--csv-dir out/]
      ocd-repro run all --paper-scale --csv-dir results/

* toolkit — work with OCD instances as JSON files::

      ocd-repro generate --family random --out problem.json
      ocd-repro solve problem.json
      ocd-repro simulate problem.json --heuristic local --render
      ocd-repro compare problem.json

* observability — record and inspect run traces
  (``docs/OBSERVABILITY.md``)::

      ocd-repro trace problem.json --heuristic all --out trace.jsonl
      ocd-repro trace random --size 20 --tokens 8 --profile
      ocd-repro report trace.jsonl
      ocd-repro convert-telemetry old-telemetry.jsonl upgraded.jsonl
      ocd-repro run fig2 --trace-dir traces/

* trace analytics — consume traces (``repro.obs.analyze``)::

      ocd-repro trace-diff a.trace.jsonl b.trace.jsonl
      ocd-repro trace-verify trace.jsonl [more.jsonl ...]
      ocd-repro trace-attribute trace.jsonl --format json
      ocd-repro trace-export trace.jsonl --format chrome --out run.chrome.json
      ocd-repro bench-trend BENCH_engine.json new_bench.json --threshold 0.1
      ocd-repro trace-scan traces/ --fail-on-anomaly

  ``report``, ``trace-verify``, ``trace-scan``, ``trace-attribute`` and
  ``bench-trend`` all take ``--format json`` for deterministic
  sorted-key JSON output.

* live monitoring — follow a sweep while it runs
  (``repro.obs.live``)::

      ocd-repro run fig2 --ledger results/ledger.jsonl --trace-dir traces/
      ocd-repro watch results/ledger.jsonl --trace traces/
      ocd-repro watch results/ledger.jsonl --once --fail-on-anomaly
      ocd-repro trace-scan traces/ --follow --ledger results/ledger.jsonl

(equivalently ``python -m repro ...``).  Problem files are the
``Problem.to_dict`` JSON form.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import List, Optional

from repro.core.problem import Problem

__all__ = ["main"]

_GENERATE_FAMILIES = ("random", "bottleneck", "dag", "spread")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ocd-repro",
        description=(
            "Reproduction of 'The Overlay Network Content Distribution "
            "Problem' (Killian et al., 2005): regenerate the evaluation "
            "figures, or solve/simulate OCD instances."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (figure number) or 'all'")
    run.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full parameters (minutes instead of seconds)",
    )
    run.add_argument(
        "--csv-dir",
        default=None,
        help="also write each experiment's rows to <dir>/<id>.csv",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan sweep points out over N worker processes (default: serial; "
        "output is bit-identical either way)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache",
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="recompute every point even when a cached result exists",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="result cache root (default results/cache, or $REPRO_CACHE_DIR)",
    )
    run.add_argument(
        "--telemetry",
        default=None,
        help="append per-point telemetry JSONL here "
        "(default <cache-dir>/telemetry.jsonl)",
    )
    run.add_argument(
        "--trace-dir",
        default=None,
        help="write one run-trace JSONL per computed sweep point into this "
        "directory (or $REPRO_TRACE_DIR; cache hits compute nothing and "
        "leave no trace)",
    )
    run.add_argument(
        "--ledger",
        default=None,
        help="append the live run ledger (sweep/point status + heartbeat "
        "events) here, for 'ocd-repro watch' (or $REPRO_LEDGER)",
    )
    run.add_argument(
        "--heartbeat-s",
        type=float,
        default=None,
        help="seconds between in-flight worker heartbeats in the ledger "
        "(default 5, or $REPRO_HEARTBEAT_S)",
    )
    run.add_argument(
        "--profile-sweep",
        action="store_true",
        help="aggregate per-worker phase timers/metrics into one "
        "sweep-level profile, rendered at sweep end and embedded in the "
        "ledger's sweep_end event",
    )

    generate = sub.add_parser(
        "generate", help="generate a random OCD instance as JSON"
    )
    generate.add_argument("--family", choices=_GENERATE_FAMILIES, default="random")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--size", type=int, default=6, help="approximate vertex count"
    )
    generate.add_argument("--tokens", type=int, default=3)
    generate.add_argument(
        "--out", default="-", help="output path ('-' for stdout)"
    )

    solve = sub.add_parser(
        "solve", help="exact optima for a small instance (JSON file)"
    )
    solve.add_argument("problem", help="path to a Problem JSON file")

    simulate = sub.add_parser("simulate", help="run one heuristic on an instance")
    simulate.add_argument("problem", help="path to a Problem JSON file")
    simulate.add_argument(
        "--heuristic",
        default="local",
        help="round_robin | random | local | bandwidth | global | sequential",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--render",
        action="store_true",
        help="print the pruned schedule step by step (small instances)",
    )
    simulate.add_argument(
        "--profile",
        action="store_true",
        help="print the phase-timer/metrics summary after the run",
    )
    simulate.add_argument(
        "--kernel",
        choices=("state", "batch", "auto"),
        default="state",
        help="step kernel: state (default scalar), batch (numpy bitplane "
        "matrices; errors if numpy is missing), or auto (batch when numpy "
        "is importable, else state) — schedules are byte-identical either "
        "way",
    )

    trace = sub.add_parser(
        "trace",
        help="run heuristics with full tracing into a JSONL trace file",
    )
    trace.add_argument(
        "scenario",
        help="path to a Problem JSON file, or a generator family "
        f"({' | '.join(_GENERATE_FAMILIES)})",
    )
    trace.add_argument(
        "--heuristic",
        default="all",
        help="round_robin | random | local | bandwidth | global | sequential "
        "| all (default: all, tracing every standard heuristic in turn)",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--size",
        type=int,
        default=12,
        help="approximate vertex count when scenario is a generator family",
    )
    trace.add_argument(
        "--tokens",
        type=int,
        default=6,
        help="token count when scenario is a generator family",
    )
    trace.add_argument(
        "--out",
        default=None,
        help="trace output path (default <scenario>.trace.jsonl)",
    )
    trace.add_argument(
        "--profile",
        action="store_true",
        help="print the phase-timer/metrics summary after tracing",
    )
    trace.add_argument(
        "--engine",
        choices=("sim", "reference"),
        default="sim",
        help="sim (incremental engine, default) or reference (run the "
        "frozen pre-kernel oracle and re-trace its schedule) — diffing "
        "the two with 'trace-diff --ignore-fields engine' is the "
        "differential-debugging smoke test",
    )
    trace.add_argument(
        "--kernel",
        choices=("state", "batch", "auto"),
        default="state",
        help="step kernel for the sim engine (ignored with "
        "--engine reference); traces are byte-identical across kernels",
    )

    diff = sub.add_parser(
        "trace-diff",
        help="localize the first divergence between two trace files",
    )
    diff.add_argument("trace_a", help="path to trace A (JSONL)")
    diff.add_argument("trace_b", help="path to trace B (JSONL)")
    diff.add_argument(
        "--ignore-fields",
        default="",
        help="comma-separated event fields excluded from comparison "
        "(e.g. 'engine' when diffing a live trace against a re-trace)",
    )

    verify = sub.add_parser(
        "trace-verify",
        help="replay-validate traces against the paper's schedule-validity "
        "invariants",
    )
    verify.add_argument(
        "traces", nargs="+", help="trace JSONL file(s) to validate"
    )
    verify.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text (default) or "
        "deterministic sorted-key JSON",
    )

    attribute = sub.add_parser(
        "trace-attribute",
        help="explain each traced run's makespan: critical path, blocking "
        "causes, and the lower-bound gap decomposition",
    )
    attribute.add_argument(
        "traces", nargs="+", help="trace JSONL file(s) to attribute"
    )
    attribute.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text (default) or "
        "deterministic sorted-key JSON (including one schema-valid "
        "run_attribution event per run)",
    )

    export = sub.add_parser(
        "trace-export",
        help="export a trace's causal structure for external viewers",
    )
    export.add_argument("trace", help="path to a trace JSONL file")
    export.add_argument(
        "--format",
        choices=("chrome", "dot"),
        default="chrome",
        help="chrome (trace-viewer/Perfetto JSON timeline, lane per "
        "vertex, default) or dot (Graphviz dissemination trees)",
    )
    export.add_argument(
        "--out",
        default="-",
        help="output path ('-' for stdout, the default)",
    )

    trend = sub.add_parser(
        "bench-trend",
        help="compare two BENCH_engine.json snapshots and gate regressions",
    )
    trend.add_argument("old", help="baseline bench snapshot (JSON)")
    trend.add_argument("new", help="candidate bench snapshot (JSON)")
    trend.add_argument(
        "--metric",
        default="speedup",
        help="per-case metric to pair (default: speedup)",
    )
    trend.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fail when any case's new/old ratio drops below 1 - threshold "
        "(default: 0.10)",
    )
    trend.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text (default) or "
        "deterministic sorted-key JSON",
    )

    scan = sub.add_parser(
        "trace-scan",
        help="scan trace files or directories for anomalous runs",
    )
    scan.add_argument(
        "paths",
        nargs="+",
        help="trace JSONL file(s) and/or directories of *.jsonl traces",
    )
    scan.add_argument(
        "--stall-span",
        type=int,
        default=3,
        help="flag zero-gain spans at least this long (default: 3)",
    )
    scan.add_argument(
        "--plateau-span",
        type=int,
        default=4,
        help="flag constant non-zero deficit plateaus at least this long "
        "(default: 4)",
    )
    scan.add_argument(
        "--util-floor",
        type=float,
        default=0.02,
        help="arc utilization at or below this counts as quiet (default: 0.02)",
    )
    scan.add_argument(
        "--util-span",
        type=int,
        default=3,
        help="flag quiet-network spans at least this long (default: 3)",
    )
    scan.add_argument(
        "--fail-on-anomaly",
        action="store_true",
        help="exit non-zero when any anomaly is found (for CI)",
    )
    scan.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text (default) or "
        "deterministic sorted-key JSON",
    )
    scan.add_argument(
        "--follow",
        action="store_true",
        help="scan incrementally while the traces grow, finishing with a "
        "strict pass once the sweep's ledger records sweep_end "
        "(requires --ledger)",
    )
    scan.add_argument(
        "--ledger",
        default=None,
        help="run-ledger JSONL announcing the sweep being followed "
        "(written by run --ledger); --follow stops when it ends",
    )
    scan.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="poll interval in seconds for --follow (default: 0.5)",
    )

    watch = sub.add_parser(
        "watch",
        help="live terminal dashboard over a sweep's run ledger",
    )
    watch.add_argument(
        "ledger",
        help="run-ledger JSONL path (written by run --ledger)",
    )
    watch.add_argument(
        "--trace",
        action="append",
        default=None,
        metavar="PATH",
        help="also scan these trace files/directories for anomalies as "
        "they grow (repeatable)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot and exit (non-TTY/CI mode)",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="poll interval in seconds (default: 1.0)",
    )
    watch.add_argument(
        "--fail-on-anomaly",
        action="store_true",
        help="exit non-zero when the trace scan finds any anomaly",
    )

    report = sub.add_parser(
        "report", help="render a trace JSONL file as a text timeline"
    )
    report.add_argument("trace", help="path to a trace JSONL file")
    report.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text (default) or "
        "deterministic sorted-key JSON",
    )

    convert = sub.add_parser(
        "convert-telemetry",
        help="upgrade pre-schema sweep telemetry JSONL to the event schema",
    )
    convert.add_argument("src", help="legacy telemetry JSONL file")
    convert.add_argument("dst", help="output path (must differ from src)")

    compare = sub.add_parser(
        "compare", help="all heuristics x all metrics on an instance"
    )
    compare.add_argument("problem", help="path to a Problem JSON file")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--with-sequential",
        action="store_true",
        help="include the streaming (in-order) heuristic",
    )
    return parser


def _load_problem(path: str) -> Problem:
    with open(path) as handle:
        return Problem.from_dict(json.load(handle))


def _emit_json(payload) -> None:
    """The one ``--format json`` serializer: sorted keys, 2-space indent.

    Every JSON-emitting verb goes through here so their output is
    deterministic and byte-comparable across runs.
    """
    print(json.dumps(payload, sort_keys=True, indent=2))


def _cmd_list() -> int:
    from repro.experiments import ALL_EXPERIMENTS

    for name in sorted(ALL_EXPERIMENTS):
        print(name)
    return 0


def _cmd_run(args) -> int:
    from dataclasses import replace

    from repro.experiments import (
        ALL_EXPERIMENTS,
        PAPER,
        QUICK,
        Executor,
        SweepError,
        default_executor_config,
    )

    if args.experiment != "all" and args.experiment not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{', '.join(sorted(ALL_EXPERIMENTS))} or 'all'",
            file=sys.stderr,
        )
        return 2
    scale = PAPER if args.paper_scale else QUICK
    config = default_executor_config(
        workers=args.workers,
        use_cache=False if args.no_cache else None,
        force=True if args.force else None,
        cache_dir=args.cache_dir,
        trace_dir=args.trace_dir,
        ledger_path=args.ledger,
        heartbeat_s=args.heartbeat_s,
        profile=True if args.profile_sweep else None,
    )
    if args.telemetry is not None:
        config = replace(config, telemetry_path=args.telemetry)
    elif config.use_cache:
        config = config.with_telemetry_default()
    executor = Executor(config)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.perf_counter()
        try:
            result = ALL_EXPERIMENTS[name](scale, executor=executor)
        except SweepError as error:
            print(f"{name} failed:\n{error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        print(result.to_text())
        print(f"({name} completed in {elapsed:.1f}s at {scale.name} scale)\n")
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
            path = os.path.join(args.csv_dir, f"{name}.csv")
            result.to_csv(path)
            print(f"wrote {path}\n")
    return 0


def _generate_problem(family: str, seed: int, size: int, tokens: int) -> Problem:
    from repro.topology.generators import (
        adversarial_spread_instance,
        bottleneck_instance,
        dag_instance,
        random_instance,
    )

    rng = random.Random(seed)
    if family == "random":
        return random_instance(
            rng, max_vertices=max(2, size), max_tokens=max(1, tokens)
        )
    if family == "bottleneck":
        return bottleneck_instance(
            rng, cluster_size=max(1, size // 2), num_tokens=max(1, tokens)
        )
    if family == "dag":
        return dag_instance(
            rng, num_vertices=max(2, size), num_tokens=max(1, tokens)
        )
    return adversarial_spread_instance(
        rng, num_vertices=max(2, size), num_tokens=max(1, tokens)
    )


def _cmd_generate(args) -> int:
    problem = _generate_problem(args.family, args.seed, args.size, args.tokens)
    payload = json.dumps(problem.to_dict(), indent=2)
    if args.out == "-":
        print(payload)
    else:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}: {problem}")
    return 0


def _cmd_solve(args) -> int:
    from repro.core.bounds import remaining_bandwidth, remaining_timesteps
    from repro.exact import (
        min_bandwidth_exact,
        solve_eocd_ilp,
        solve_focd_bnb,
    )

    problem = _load_problem(args.problem)
    print(f"instance: {problem}")
    if not problem.is_satisfiable():
        print("unsatisfiable: some wanted token cannot reach its wanter")
        return 1
    print(
        f"counting bounds: >= {remaining_timesteps(problem)} timesteps, "
        f">= {remaining_bandwidth(problem)} moves"
    )
    optimum, witness = solve_focd_bnb(problem)
    print(f"optimal makespan (FOCD): {optimum} timesteps")
    min_bw = min_bandwidth_exact(problem)
    print(f"optimal bandwidth (EOCD): {min_bw} moves")
    hybrid = solve_eocd_ilp(problem, optimum)
    print(
        f"min bandwidth among fastest schedules: {hybrid.bandwidth} moves "
        f"at {optimum} timesteps"
    )
    if hybrid.bandwidth > min_bw:
        print("note: time and bandwidth optima conflict on this instance")
    return 0


def _resolve_heuristic(name: str):
    """One heuristic instance by CLI name, or ``None`` if unknown."""
    from repro.heuristics import HEURISTIC_FACTORIES, SequentialHeuristic

    if name == "sequential":
        return SequentialHeuristic()
    if name in HEURISTIC_FACTORIES:
        return HEURISTIC_FACTORIES[name]()
    return None


def _cmd_simulate(args) -> int:
    from repro.core.pruning import prune_schedule
    from repro.heuristics import HEURISTIC_FACTORIES
    from repro.obs import MetricsRegistry
    from repro.sim import MissingNumpyError, run_heuristic, schedule_to_text

    problem = _load_problem(args.problem)
    heuristic = _resolve_heuristic(args.heuristic)
    if heuristic is None:
        print(
            f"unknown heuristic {args.heuristic!r}; choose from "
            f"{', '.join(sorted(HEURISTIC_FACTORIES))}, sequential",
            file=sys.stderr,
        )
        return 2
    metrics = MetricsRegistry() if args.profile else None
    try:
        result = run_heuristic(
            problem,
            heuristic,
            seed=args.seed,
            metrics=metrics,
            kernel=args.kernel,
        )
    except MissingNumpyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    pruned, stats = prune_schedule(problem, result.schedule)
    print(
        f"{heuristic.name} on {problem}: success={result.success} "
        f"makespan={result.makespan} bandwidth={result.bandwidth} "
        f"(pruned {pruned.bandwidth})"
    )
    if args.render:
        print(schedule_to_text(problem, pruned))
    if metrics is not None:
        print(metrics.render())
    return 0 if result.success else 1


def _cmd_trace(args) -> int:
    from repro.heuristics import HEURISTIC_FACTORIES, standard_heuristics
    from repro.obs import JsonlTracer, MetricsRegistry
    from repro.sim import MissingNumpyError, StallError, run_heuristic

    if args.scenario in _GENERATE_FAMILIES:
        problem = _generate_problem(args.scenario, args.seed, args.size, args.tokens)
        scenario_fields = {
            "scenario": args.scenario,
            "family": args.scenario,
            "size": args.size,
            "tokens": args.tokens,
        }
        default_stem = args.scenario
    else:
        problem = _load_problem(args.scenario)
        scenario_fields = {"scenario": args.scenario}
        default_stem = os.path.splitext(os.path.basename(args.scenario))[0]

    if args.heuristic == "all":
        field = standard_heuristics()
    else:
        heuristic = _resolve_heuristic(args.heuristic)
        if heuristic is None:
            print(
                f"unknown heuristic {args.heuristic!r}; choose from "
                f"{', '.join(sorted(HEURISTIC_FACTORIES))}, sequential, all",
                file=sys.stderr,
            )
            return 2
        field = [heuristic]

    out = args.out if args.out is not None else f"{default_stem}.trace.jsonl"
    metrics = MetricsRegistry() if args.profile else None
    failures = 0
    with JsonlTracer(path=out) as tracer:
        tracer.emit(
            "trace_header",
            {**scenario_fields, "seed": args.seed, "heuristic": args.heuristic},
        )
        for heuristic in field:
            try:
                if args.engine == "reference":
                    result = _reference_traced_run(
                        tracer, problem, heuristic.name, args.seed
                    )
                else:
                    result = run_heuristic(
                        problem,
                        heuristic,
                        seed=args.seed,
                        tracer=tracer,
                        metrics=metrics,
                        kernel=args.kernel,
                    )
            except MissingNumpyError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            except StallError as error:
                failures += 1
                print(f"{heuristic.name}: stalled ({error})", file=sys.stderr)
                continue
            print(
                f"{heuristic.name}: success={result.success} "
                f"makespan={result.makespan} bandwidth={result.bandwidth}"
            )
            if not result.success:
                failures += 1
    print(f"wrote {out}")
    if metrics is not None:
        print(metrics.render())
    return 0 if failures == 0 else 1


def _reference_traced_run(tracer, problem: Problem, name: str, seed: int):
    """Run the frozen oracle (no tracing support) and re-trace its schedule."""
    from repro.obs.analyze import retrace_run
    from repro.sim.reference import make_reference_heuristic, reference_run_heuristic

    result = reference_run_heuristic(
        problem, make_reference_heuristic(name), seed=seed
    )
    retrace_run(
        tracer,
        problem,
        result.schedule,
        result.success,
        heuristic_name=name,
        engine="reference",
    )
    return result


def _cmd_trace_diff(args) -> int:
    from repro.obs.analyze import diff_traces

    ignore = tuple(f for f in args.ignore_fields.split(",") if f)
    try:
        result = diff_traces(args.trace_a, args.trace_b, ignore_fields=ignore)
    except (OSError, ValueError) as error:
        print(f"trace-diff failed: {error}", file=sys.stderr)
        return 2
    print(result.render())
    return 0 if result.identical else 1


def _cmd_trace_verify(args) -> int:
    from repro.obs.analyze import validate_trace

    reports = []
    for path in args.traces:
        try:
            report = validate_trace(path)
        except (OSError, ValueError) as error:
            print(f"trace-verify failed on {path}: {error}", file=sys.stderr)
            return 2
        reports.append(report)
    ok = all(report.ok for report in reports)
    if args.format == "json":
        _emit_json(
            {
                "ok": ok,
                "reports": [report.as_dict() for report in reports],
            }
        )
    else:
        for report in reports:
            print(report.render())
    return 0 if ok else 1


def _cmd_bench_trend(args) -> int:
    from repro.obs.analyze import compare_bench

    try:
        report = compare_bench(
            args.old, args.new, metric=args.metric, threshold=args.threshold
        )
    except (OSError, ValueError) as error:
        print(f"bench-trend failed: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        _emit_json(report.as_dict())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_trace_scan(args) -> int:
    from repro.obs.analyze import ScanThresholds, scan_paths

    thresholds = ScanThresholds(
        stall_span=args.stall_span,
        plateau_span=args.plateau_span,
        util_floor=args.util_floor,
        util_span=args.util_span,
    )
    try:
        if args.follow:
            anomalies = _follow_scan(args, thresholds)
        else:
            anomalies = scan_paths(args.paths, thresholds)
    except (OSError, ValueError) as error:
        print(f"trace-scan failed: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        _emit_json(
            {
                "anomalies": [anomaly.as_dict() for anomaly in anomalies],
                "count": len(anomalies),
                "paths": list(args.paths),
            }
        )
    else:
        if not args.follow:  # follow mode already streamed each finding
            for anomaly in anomalies:
                print(anomaly.render())
        print(
            f"trace-scan: {len(anomalies)} anomaly(ies) across "
            f"{len(args.paths)} path(s)"
        )
    if anomalies and args.fail_on_anomaly:
        return 1
    return 0


def _follow_scan(args, thresholds) -> list:
    """Incremental trace-scan until the sweep's ledger reaches sweep_end.

    Streams each anomaly as it is discovered (text mode), then runs the
    strict finalize pass — so the returned findings match a post-hoc
    ``scan_paths`` over the same files.
    """
    from repro.obs.live import IncrementalScanner, LedgerState

    if not args.ledger:
        raise ValueError("--follow requires --ledger to know when to stop")
    scanner = IncrementalScanner(args.paths, thresholds=thresholds)
    while True:
        fresh = scanner.poll()
        if args.format != "json":
            for anomaly in fresh:
                print(anomaly.render(), flush=True)
        if os.path.exists(args.ledger):
            state = LedgerState.from_ledger(args.ledger)
            if state.end is not None:
                break
        time.sleep(args.interval)
    return scanner.finalize()


def _cmd_watch(args) -> int:
    from repro.obs.live import watch

    try:
        result = watch(
            args.ledger,
            trace_paths=args.trace or [],
            stream=sys.stdout,
            once=args.once,
            interval=args.interval,
            fail_on_anomaly=args.fail_on_anomaly,
        )
    except (OSError, ValueError) as error:
        print(f"watch failed: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("", file=sys.stderr)
        return 130
    return result.exit_code


def _cmd_report(args) -> int:
    from repro.obs import render_trace_file
    from repro.obs.events import read_events
    from repro.obs.report import load_timelines

    if args.format == "json":
        try:
            events = read_events(args.trace)
        except (OSError, ValueError) as error:
            print(f"report failed: {error}", file=sys.stderr)
            return 2
        header = next(
            (e for e in events if e["event"] == "trace_header"), None
        )
        _emit_json(
            {
                "path": args.trace,
                "header": header,
                "runs": [t.as_dict() for t in load_timelines(events)],
            }
        )
        return 0
    print(render_trace_file(args.trace), end="")
    return 0


def _cmd_trace_attribute(args) -> int:
    from repro.obs.analyze import AttributionError, attribute_trace
    from repro.obs.analyze.attribution import summary_event

    reports = []
    for path in args.traces:
        try:
            reports.append(attribute_trace(path))
        except AttributionError as error:
            print(f"trace-attribute refused {path}: {error}", file=sys.stderr)
            return 2
        except (OSError, ValueError) as error:
            print(f"trace-attribute failed on {path}: {error}", file=sys.stderr)
            return 2
    if args.format == "json":
        _emit_json(
            {
                "reports": [report.as_dict() for report in reports],
                "events": [
                    summary_event(run)
                    for report in reports
                    for run in report.runs
                ],
            }
        )
    else:
        for report in reports:
            print(report.render())
    return 0


def _cmd_trace_export(args) -> int:
    from repro.obs.analyze import chrome_trace, dot_forest
    from repro.obs.events import read_events

    try:
        events = read_events(args.trace)
        if args.format == "chrome":
            rendered = json.dumps(
                chrome_trace(events, path=args.trace), sort_keys=True, indent=2
            )
        else:
            rendered = dot_forest(events, path=args.trace).rstrip("\n")
    except (OSError, ValueError) as error:
        print(f"trace-export failed on {args.trace}: {error}", file=sys.stderr)
        return 2
    if args.out == "-":
        print(rendered)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_convert_telemetry(args) -> int:
    from repro.obs import convert_telemetry

    try:
        total, upgraded = convert_telemetry(args.src, args.dst)
    except (OSError, ValueError) as error:
        print(f"convert-telemetry failed: {error}", file=sys.stderr)
        return 1
    print(
        f"wrote {args.dst}: {total} record(s), {upgraded} upgraded, "
        f"{total - upgraded} already on the event schema"
    )
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis import compare_heuristics
    from repro.experiments.report import format_table
    from repro.heuristics import SequentialHeuristic, standard_heuristics

    problem = _load_problem(args.problem)
    field = standard_heuristics()
    if args.with_sequential:
        field.append(SequentialHeuristic())
    rows = compare_heuristics(problem, heuristics=field, seed=args.seed)
    print(f"instance: {problem}")
    print(format_table([row.as_dict() for row in rows]))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "trace-diff":
        return _cmd_trace_diff(args)
    if args.command == "trace-verify":
        return _cmd_trace_verify(args)
    if args.command == "trace-attribute":
        return _cmd_trace_attribute(args)
    if args.command == "trace-export":
        return _cmd_trace_export(args)
    if args.command == "bench-trend":
        return _cmd_bench_trend(args)
    if args.command == "trace-scan":
        return _cmd_trace_scan(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "convert-telemetry":
        return _cmd_convert_telemetry(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
