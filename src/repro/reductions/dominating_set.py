"""The Dominating Set → FOCD reduction (Theorem 5 / Figure 7).

Given an undirected graph ``G = (V, E)`` and an integer ``k``, the
appendix constructs a FOCD instance on ``2n + 2`` vertices that is
solvable in two timesteps iff ``G`` has a dominating set of size at most
``k``:

* vertices ``{s, t} ∪ V ∪ V'`` where ``V'`` carries a primed copy
  ``v'_i`` of each ``v_i``;
* tokens ``{0} ∪ {1, .., n-k}``; ``s`` holds all of them;
* ``t`` wants ``{1, .., n-k}`` and every ``v'_i`` wants ``{0}``;
* capacity-one arcs ``s -> v_i``, ``v_i -> t``, ``v_i -> v'_i``, and
  ``v_i -> v'_j`` for every edge ``(v_i, v_j) ∈ E``.

In two steps, ``n - k`` of the intermediaries must relay the distinct
tokens ``1..n-k`` to ``t``, so at most ``k`` intermediaries can carry
token 0 — and those must cover all of ``V'``, i.e. dominate ``G``.

This module provides the instance builder, exact and greedy Dominating
Set solvers for cross-validation, the witness extraction that recovers a
dominating set from a 2-step schedule, and the end-to-end decision
procedure driven by the branch-and-bound oracle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.problem import Problem
from repro.core.schedule import Schedule
from repro.exact.branch_and_bound import SearchBudget, decide_dfocd

__all__ = [
    "DominatingSetInstance",
    "is_dominating_set",
    "brute_force_min_dominating_set",
    "greedy_dominating_set",
    "reduce_to_focd",
    "extract_dominating_set",
    "has_dominating_set_via_focd",
]


@dataclass(frozen=True)
class DominatingSetInstance:
    """An undirected graph for the Dominating Set problem.

    Vertices are ``0..num_vertices-1``; edges are unordered pairs.
    """

    num_vertices: int
    edges: FrozenSet[Tuple[int, int]]

    @classmethod
    def build(cls, num_vertices: int, edges: Sequence[Tuple[int, int]]) -> "DominatingSetInstance":
        if num_vertices < 1:
            raise ValueError(f"need at least one vertex, got {num_vertices}")
        normalized = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at vertex {u}")
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ValueError(f"edge ({u}, {v}) out of range")
            normalized.add((min(u, v), max(u, v)))
        return cls(num_vertices, frozenset(normalized))

    def neighbors(self, v: int) -> Set[int]:
        out = set()
        for a, b in self.edges:
            if a == v:
                out.add(b)
            elif b == v:
                out.add(a)
        return out

    def closed_neighborhood(self, v: int) -> Set[int]:
        return self.neighbors(v) | {v}


def is_dominating_set(graph: DominatingSetInstance, candidate: Set[int]) -> bool:
    """Whether every vertex is in ``candidate`` or adjacent to it."""
    covered: Set[int] = set()
    for v in sorted(candidate):
        covered |= graph.closed_neighborhood(v)
    return len(covered) == graph.num_vertices


def brute_force_min_dominating_set(graph: DominatingSetInstance) -> Set[int]:
    """Smallest dominating set by subset enumeration (exponential)."""
    vertices = range(graph.num_vertices)
    for size in range(graph.num_vertices + 1):
        for candidate in itertools.combinations(vertices, size):
            if is_dominating_set(graph, set(candidate)):
                return set(candidate)
    raise AssertionError("the full vertex set always dominates")


def greedy_dominating_set(graph: DominatingSetInstance) -> Set[int]:
    """The classic ln(n)-approximation: repeatedly take the vertex
    covering the most uncovered vertices."""
    uncovered = set(range(graph.num_vertices))
    chosen: Set[int] = set()
    while uncovered:
        best = max(
            range(graph.num_vertices),
            key=lambda v: (len(graph.closed_neighborhood(v) & uncovered), -v),
        )
        chosen.add(best)
        uncovered -= graph.closed_neighborhood(best)
    return chosen


# ----------------------------------------------------------------------
# The reduction
# ----------------------------------------------------------------------
def _layout(n: int) -> Tuple[int, int, List[int], List[int]]:
    """Vertex ids in the FOCD instance: s, t, V, V'."""
    s = 0
    t = 1
    v_ids = list(range(2, 2 + n))
    vp_ids = list(range(2 + n, 2 + 2 * n))
    return s, t, v_ids, vp_ids


def reduce_to_focd(graph: DominatingSetInstance, k: int) -> Problem:
    """Build the Figure 7 FOCD instance for "does G have a dominating
    set of size at most k?"."""
    n = graph.num_vertices
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n={n}, got k={k}")
    s, t, v_ids, vp_ids = _layout(n)
    num_tokens = 1 + (n - k)  # token 0 plus tokens 1..n-k
    arcs: List[Tuple[int, int, int]] = []
    for i in range(n):
        arcs.append((s, v_ids[i], 1))
        arcs.append((v_ids[i], t, 1))
        arcs.append((v_ids[i], vp_ids[i], 1))
    for a, b in sorted(graph.edges):
        arcs.append((v_ids[a], vp_ids[b], 1))
        arcs.append((v_ids[b], vp_ids[a], 1))
    want = {t: list(range(1, num_tokens))}
    for vp in vp_ids:
        want[vp] = [0]
    return Problem.build(
        2 * n + 2,
        num_tokens,
        arcs,
        have={s: list(range(num_tokens))},
        want=want,
        name=f"ds_reduction(n={n}, k={k})",
    )


def extract_dominating_set(
    graph: DominatingSetInstance, k: int, schedule: Schedule
) -> Set[int]:
    """Recover a dominating set from a successful 2-step schedule.

    Per the proof, the intermediaries that hold token 0 after the first
    timestep must dominate ``G``.  Raises :class:`ValueError` if the
    schedule is not a valid successful 2-step solution or the recovered
    set does not dominate (which would falsify the theorem).
    """
    problem = reduce_to_focd(graph, k)
    if schedule.makespan > 2:
        raise ValueError(
            f"expected a schedule of at most 2 steps, got {schedule.makespan}"
        )
    if not schedule.is_successful(problem):
        raise ValueError("schedule does not solve the reduction instance")
    history = schedule.replay(problem)
    _s, _t, v_ids, _vp_ids = _layout(graph.num_vertices)
    after_first = history[min(1, len(history) - 1)]
    dominating = {
        i for i, v in enumerate(v_ids) if 0 in after_first[v]
    }
    if len(dominating) > k:
        raise ValueError(
            f"recovered {len(dominating)} holders of token 0, more than k={k}; "
            f"schedule wastes capacity"
        )
    if not is_dominating_set(graph, dominating):
        raise ValueError(
            f"recovered set {sorted(dominating)} does not dominate the graph"
        )
    return dominating


def has_dominating_set_via_focd(
    graph: DominatingSetInstance,
    k: int,
    budget: Optional[SearchBudget] = None,
) -> bool:
    """Decide Dominating Set by solving the reduced FOCD instance.

    This is the reduction run "forwards" as an algorithm: G has a
    dominating set of size ≤ k iff the reduction admits a 2-timestep
    schedule (decided exactly by branch-and-bound).
    """
    problem = reduce_to_focd(graph, k)
    schedule = decide_dfocd(problem, 2, budget=budget)
    return schedule is not None
