"""NP-completeness machinery: the Dominating Set reduction and the
Theorem 1–3 certificates."""

from repro.reductions.certificates import (
    cleanup_schedule,
    decode_schedule,
    encode_schedule,
    polynomial_verifier,
    theorem1_bound,
    theorem2_bit_bound,
)
from repro.reductions.dominating_set import (
    DominatingSetInstance,
    brute_force_min_dominating_set,
    extract_dominating_set,
    greedy_dominating_set,
    has_dominating_set_via_focd,
    is_dominating_set,
    reduce_to_focd,
)

__all__ = [
    "DominatingSetInstance",
    "brute_force_min_dominating_set",
    "cleanup_schedule",
    "decode_schedule",
    "encode_schedule",
    "extract_dominating_set",
    "greedy_dominating_set",
    "has_dominating_set_via_focd",
    "is_dominating_set",
    "polynomial_verifier",
    "reduce_to_focd",
    "theorem1_bound",
    "theorem2_bit_bound",
]
