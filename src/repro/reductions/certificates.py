"""Constructive certificates for Theorems 1–3.

* **Theorem 1** — a satisfiable FOCD instance is satisfiable in
  ``m(n-1)`` moves: no useful schedule delivers a token twice to the
  same vertex.  :func:`cleanup_schedule` performs exactly the proof's
  cleanup (drop repeat deliveries) and the tests check the resulting
  bandwidth never exceeds the bound.

* **Theorem 2** — some successful run can be described in
  ``O(nm (log n + log m))`` bits.  :func:`encode_schedule` implements the
  proof's encoding (a move list of ``2 log n + log m``-bit entries plus
  per-timestep segment counts) as an actual bit string, and
  :func:`decode_schedule` inverts it, so the bound is witnessed by real
  serialized bytes rather than a formula.

* **Theorem 3** — solutions are verifiable in polynomial time.
  :func:`polynomial_verifier` is that verifier: a single pass over the
  moves checking possession, capacity, and the end condition (it simply
  delegates to :meth:`repro.core.Schedule.validate`, which is the
  authority on the model's constraints).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.problem import Problem
from repro.core.pruning import _dedup_pass
from repro.core.schedule import Schedule, ScheduleError, Timestep

__all__ = [
    "cleanup_schedule",
    "theorem1_bound",
    "encode_schedule",
    "decode_schedule",
    "theorem2_bit_bound",
    "polynomial_verifier",
]


def theorem1_bound(problem: Problem) -> int:
    """``m(n-1)``: the maximum number of useful moves."""
    return problem.move_bound()


def cleanup_schedule(problem: Problem, schedule: Schedule) -> Schedule:
    """The Theorem 1 cleanup: drop every move that delivers a token the
    destination already possesses, then compress out timesteps left with
    no moves at all (removing an idle step keeps a schedule valid —
    possession only ever grows).  The result has at most ``m(n-1)``
    moves spread over at most ``m(n-1)`` timesteps, which is what the
    Theorem 2 encoding budget assumes."""
    steps = [
        Timestep(step) for step in _dedup_pass(problem, schedule) if step
    ]
    return Schedule(steps)


# ----------------------------------------------------------------------
# Theorem 2: the explicit bit encoding
# ----------------------------------------------------------------------
class _BitWriter:
    def __init__(self) -> None:
        self.bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in reversed(range(width)):
            self.bits.append((value >> i) & 1)

    def getvalue(self) -> bytes:
        out = bytearray()
        for i in range(0, len(self.bits), 8):
            byte = 0
            for bit in self.bits[i : i + 8]:
                byte = (byte << 1) | bit
            byte <<= (8 - min(8, len(self.bits) - i))
            out.append(byte)
        return bytes(out)

    def __len__(self) -> int:
        return len(self.bits)


class _BitReader:
    def __init__(self, data: bytes, num_bits: int) -> None:
        self.data = data
        self.num_bits = num_bits
        self.pos = 0

    def read(self, width: int) -> int:
        if self.pos + width > self.num_bits:
            raise ValueError("bit stream exhausted")
        value = 0
        for _ in range(width):
            byte = self.data[self.pos // 8]
            bit = (byte >> (7 - self.pos % 8)) & 1
            value = (value << 1) | bit
            self.pos += 1
        return value


def _field_widths(problem: Problem) -> Tuple[int, int, int]:
    """Bit widths for (vertex, token, counter) fields.

    Counters hold per-step move counts and the number of timesteps; the
    proof caps both by ``m(n-1) <= nm`` for cleaned schedules, so
    ``ceil(log2(nm + 1))`` bits suffice.
    """
    n = max(problem.num_vertices, 2)
    m = max(problem.num_tokens, 2)
    vertex_bits = math.ceil(math.log2(n))
    token_bits = math.ceil(math.log2(m))
    count_bits = max(1, math.ceil(math.log2(n * m + 1)))
    return vertex_bits, token_bits, count_bits


def encode_schedule(problem: Problem, schedule: Schedule) -> Tuple[bytes, int]:
    """Serialize a schedule with the Theorem 2 encoding.

    Returns ``(payload, num_bits)``.  Layout: a ``count_bits`` header with
    the number of timesteps, then per timestep a ``count_bits`` move
    count followed by ``(src, dst, token)`` records of
    ``2 log n + log m`` bits each.

    The encoding is defined for *cleaned* schedules, exactly as in the
    proof: at most ``nm`` moves per timestep and at most ``nm``
    timesteps.  Raises :class:`ScheduleError` otherwise — run
    :func:`cleanup_schedule` first.
    """
    vertex_bits, token_bits, count_bits = _field_widths(problem)
    limit = (1 << count_bits) - 1
    if len(schedule.steps) > limit:
        raise ScheduleError(
            f"{len(schedule.steps)} timesteps exceed the cleaned-schedule "
            f"budget of {limit}; apply cleanup_schedule first"
        )
    writer = _BitWriter()
    writer.write(len(schedule.steps), count_bits)
    for i, step in enumerate(schedule.steps):
        moves = step.moves()
        if len(moves) > limit:
            raise ScheduleError(
                f"timestep {i} has {len(moves)} moves, above the "
                f"cleaned-schedule budget of {limit}; apply cleanup_schedule "
                f"first"
            )
        writer.write(len(moves), count_bits)
        for move in moves:
            writer.write(move.src, vertex_bits)
            writer.write(move.dst, vertex_bits)
            writer.write(move.token, token_bits)
    return writer.getvalue(), len(writer)


def decode_schedule(problem: Problem, payload: bytes, num_bits: int) -> Schedule:
    """Invert :func:`encode_schedule`."""
    from repro.core.schedule import Move

    vertex_bits, token_bits, count_bits = _field_widths(problem)
    reader = _BitReader(payload, num_bits)
    num_steps = reader.read(count_bits)
    steps = []
    for _ in range(num_steps):
        count = reader.read(count_bits)
        moves = []
        for _ in range(count):
            src = reader.read(vertex_bits)
            dst = reader.read(vertex_bits)
            token = reader.read(token_bits)
            moves.append(Move(src, dst, token))
        steps.append(moves)
    return Schedule.from_move_lists(steps)


def theorem2_bit_bound(problem: Problem) -> int:
    """Explicit bit budget for the encoding of any cleaned schedule.

    Worst case: ``m(n-1)`` timesteps of one move each, so one header
    counter plus ``m(n-1)`` per-step counters plus ``m(n-1)`` move
    records.  This constant-factor-tight version of the proof's
    ``O(nm(log n + log m))`` uses the same field widths as
    :func:`encode_schedule`, so the inequality it promises is exact.
    """
    vertex_bits, token_bits, count_bits = _field_widths(problem)
    worst_moves = problem.move_bound()
    bits_per_move = 2 * vertex_bits + token_bits
    return count_bits + worst_moves * (count_bits + bits_per_move)


def polynomial_verifier(problem: Problem, schedule: Schedule) -> bool:
    """Theorem 3's certificate verifier: is this a valid *and* successful
    schedule?  One pass over the moves — time polynomial in the
    ``O(nm(log n + log m))``-bit description."""
    try:
        final = schedule.validate(problem)[-1]
    except ScheduleError:
        return False
    return all(
        problem.want[v] <= final[v] for v in range(problem.num_vertices)
    )
