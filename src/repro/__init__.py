"""repro — a reproduction of "The Overlay Network Content Distribution
Problem" (Killian, Vrable, Snoeren, Vahdat, Pasquale; PODC 2005 / UCSD
TR CS2005-0824).

The package provides:

* :mod:`repro.core` — the OCD model: problems, schedules, the
  polynomial-time schedule verifier, pruning, lower bounds, metrics.
* :mod:`repro.sim` — the synchronous round simulator.
* :mod:`repro.heuristics` — the paper's five online heuristics.
* :mod:`repro.exact` — the time-indexed integer program, branch-and-bound,
  and Steiner-tree solvers for optimal FOCD/EOCD on small instances.
* :mod:`repro.locd` — the local-knowledge (LOCD) model, the
  flood-then-optimal algorithm, and the Theorem 4 adversarial families.
* :mod:`repro.reductions` — the Dominating Set reduction (NP-hardness)
  and the Theorem 1/2 certificates.
* :mod:`repro.topology` / :mod:`repro.workloads` — the graph generators
  and have/want scenarios of the evaluation section.
* :mod:`repro.experiments` — drivers that regenerate every figure.
"""

from repro.core import (
    Arc,
    Move,
    Problem,
    Schedule,
    ScheduleError,
    Timestep,
    TokenSet,
    evaluate_schedule,
    prune_schedule,
    remaining_bandwidth,
    remaining_timesteps,
)
from repro.heuristics import make_heuristic, standard_heuristics
from repro.sim import Engine, RunResult, run_heuristic

__version__ = "1.0.0"

__all__ = [
    "Arc",
    "Engine",
    "Move",
    "Problem",
    "RunResult",
    "Schedule",
    "ScheduleError",
    "Timestep",
    "TokenSet",
    "__version__",
    "evaluate_schedule",
    "make_heuristic",
    "prune_schedule",
    "remaining_bandwidth",
    "remaining_timesteps",
    "run_heuristic",
    "standard_heuristics",
]
