"""The Random heuristic (Section 5.1).

    "In this heuristic we assume that peers have current knowledge about
    the tokens known by each of their peers at the beginning of the turn.
    Each vertex then independently chooses at random which tokens to send
    over the edge."

For every arc, the sender looks at the tokens the peer still lacks
(current one-hop knowledge) and fills the arc capacity with a uniformly
random subset of them.  There is no coordination, so two senders may push
the same token to the same vertex in the same turn — the duplication cost
the smarter heuristics try to avoid.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic, sample_tokens
from repro.sim import Proposal, StepContext

__all__ = ["RandomHeuristic"]


class RandomHeuristic(Heuristic):
    """Uncoordinated random flooding of peer-useful tokens."""

    name = "random"

    def propose(self, ctx: StepContext) -> Proposal:
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for arc in ctx.problem.arcs:
            useful = ctx.useful(arc.src, arc.dst)
            if not useful:
                continue
            sends[(arc.src, arc.dst)] = sample_tokens(useful, arc.capacity, ctx.rng)
        return sends
