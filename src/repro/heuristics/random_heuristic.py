"""The Random heuristic (Section 5.1).

    "In this heuristic we assume that peers have current knowledge about
    the tokens known by each of their peers at the beginning of the turn.
    Each vertex then independently chooses at random which tokens to send
    over the edge."

For every arc, the sender looks at the tokens the peer still lacks
(current one-hop knowledge) and fills the arc capacity with a uniformly
random subset of them.  There is no coordination, so two senders may push
the same token to the same vertex in the same turn — the duplication cost
the smarter heuristics try to avoid.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic, sample_tokens
from repro.sim import Proposal, StepContext
from repro.sim.batch import BatchState, VectorProposal
from repro.sim.bitplanes import masks_to_matrix, matrix_to_masks

__all__ = ["RandomHeuristic"]


class RandomHeuristic(Heuristic):
    """Uncoordinated random flooding of peer-useful tokens."""

    name = "random"

    def propose(self, ctx: StepContext) -> Proposal:
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for arc in ctx.problem.arcs:
            useful = ctx.useful(arc.src, arc.dst)
            if not useful:
                continue
            sends[(arc.src, arc.dst)] = sample_tokens(useful, arc.capacity, ctx.rng)
        return sends

    def propose_vector(self, state: BatchState) -> Optional[VectorProposal]:
        """Every arc's useful set in one batched pass; sampling unchanged.

        The per-arc ``useful = possession[src] - possession[dst]`` scan
        — the scalar loop's only per-arc work besides sampling — becomes
        one array expression over the bitplane matrix, and arcs with
        nothing useful are skipped wholesale.  Arcs whose useful set
        exceeds the capacity still call ``rng.sample`` through
        :func:`~repro.heuristics.base.sample_tokens` in ascending arc
        order, exactly as the scalar loop does, so the RNG stream and
        the sampled sets are identical by construction (no mirroring
        needed).
        """
        problem = self.problem
        if state.problem is not problem:
            return None
        np = state.np
        matrix = state.matrix
        useful = matrix[state.arc_src] & ~matrix[state.arc_dst]
        active = np.nonzero(useful.any(axis=1))[0]
        useful_act = useful[active]
        counts = np.bitwise_count(useful_act).sum(axis=1, dtype=np.int64)
        caps = state.arc_cap[active]
        sampled = (counts > caps).tolist()
        caps_list: List[int] = caps.tolist()
        if state.planes == 1:
            useful_masks: List[int] = useful_act[:, 0].tolist()
        else:
            useful_masks = matrix_to_masks(useful_act)
        rng = self.rng
        out_masks: List[int] = []
        for j, mask in enumerate(useful_masks):
            if sampled[j]:
                out_masks.append(sample_tokens(TokenSet(mask), caps_list[j], rng).mask)
            else:
                out_masks.append(mask)
        masks: Any
        if state.planes == 1:
            masks = np.array(out_masks, dtype=np.uint64)
        else:
            masks = masks_to_matrix(out_masks, problem.num_tokens)
        return VectorProposal(arc_indices=active.astype(np.int64), masks=masks)
