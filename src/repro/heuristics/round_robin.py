"""The Round-Robin heuristic (Section 5.1).

    "The round-robin strategy simply sends the circular queue of tokens
    over each link (skipping tokens it does not have).  This is the
    simplest of the heuristics, and can easily be computed locally as no
    information other than the set of tokens kept locally and the last
    token sent to each peer [is needed]."

Each sender keeps an independent cursor per outgoing arc into the circular
queue of all token ids ``0..m-1``.  Every timestep it fills the arc's
capacity with the next tokens it possesses, advancing the cursor past
tokens it lacks.  It never consults the peer's state, so it resends tokens
the peer already holds and duplicates what other peers send — exactly the
weaknesses the paper attributes to it.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext

__all__ = ["RoundRobinHeuristic"]


class RoundRobinHeuristic(Heuristic):
    """Blind circular-queue flooding; uses only the sender's own tokens."""

    name = "round_robin"

    def on_reset(self) -> None:
        # One cursor per directed arc, all starting at token 0.
        self._cursor: Dict[Tuple[int, int], int] = {
            (arc.src, arc.dst): 0 for arc in self.problem.arcs
        }

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        m = problem.num_tokens
        sends: Dict[Tuple[int, int], TokenSet] = {}
        if m == 0:
            return sends
        for arc in problem.arcs:
            owned = ctx.possession[arc.src]
            if not owned:
                continue
            key = (arc.src, arc.dst)
            cursor = self._cursor[key]
            chosen = 0
            picked = 0
            # One full lap at most: skip tokens the sender lacks.
            for offset in range(m):
                token = (cursor + offset) % m
                if token in owned:
                    chosen |= 1 << token
                    picked += 1
                    if picked == arc.capacity:
                        cursor = (token + 1) % m
                        break
            else:
                cursor = (cursor + m) % m
            self._cursor[key] = cursor
            if chosen:
                sends[key] = TokenSet(chosen)
        return sends
