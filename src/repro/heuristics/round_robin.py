"""The Round-Robin heuristic (Section 5.1).

    "The round-robin strategy simply sends the circular queue of tokens
    over each link (skipping tokens it does not have).  This is the
    simplest of the heuristics, and can easily be computed locally as no
    information other than the set of tokens kept locally and the last
    token sent to each peer [is needed]."

Each sender keeps an independent cursor per outgoing arc into the circular
queue of all token ids ``0..m-1``.  Every timestep it fills the arc's
capacity with the next tokens it possesses, advancing the cursor past
tokens it lacks.  It never consults the peer's state, so it resends tokens
the peer already holds and duplicates what other peers send — exactly the
weaknesses the paper attributes to it.

The per-arc lap is computed by *rotating the possession bitmask* so the
cursor sits at bit 0, taking the lowest ``capacity`` set bits, and
rotating back — a handful of big-int operations instead of an O(m)
per-token scan, with identical picks and cursor movement.

Because the strategy is completely RNG-free and per-arc independent, it
is the flagship client of the batch kernel's vector proposal path:
:meth:`RoundRobinHeuristic.propose_vector` runs the same rotate/strip
lap for *every arc at once* on the kernel's uint64 possession plane,
replacing the per-arc Python loop with a fixed number of whole-array
ops.  The picks and cursor movement are bit-identical to the scalar
lap (token universes beyond one 64-bit plane fall back to the scalar
path), so schedules match the dict path byte for byte.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext
from repro.sim.batch import BatchState, VectorProposal

__all__ = ["RoundRobinHeuristic"]


class RoundRobinHeuristic(Heuristic):
    """Blind circular-queue flooding; uses only the sender's own tokens."""

    name = "round_robin"

    def on_reset(self) -> None:
        # One cursor per directed arc, all starting at token 0.
        self._cursor: Dict[Tuple[int, int], int] = {
            (arc.src, arc.dst): 0 for arc in self.problem.arcs
        }
        # Vector-path cursor array; allocated on the first vector step.
        # An engine either uses the vector path for a whole run or never
        # (the fallback condition is static per problem), so the dict
        # and array cursors are never mixed.
        self._vec_cursor: Any = None

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        m = problem.num_tokens
        sends: Dict[Tuple[int, int], TokenSet] = {}
        if m == 0:
            return sends
        full = (1 << m) - 1
        possession = ctx.possession
        cursors = self._cursor
        for arc in problem.arcs:
            owned = possession[arc.src].mask
            if not owned:
                continue
            key = (arc.src, arc.dst)
            cursor = cursors[key]
            if owned.bit_count() < arc.capacity:
                # The whole lap fits without filling the capacity: send
                # everything and leave the cursor where it was.
                sends[key] = TokenSet(owned)
                continue
            # Rotate so the cursor token is bit 0; the next tokens in
            # queue order are then simply the lowest set bits.
            rot = ((owned >> cursor) | (owned << (m - cursor))) & full
            prefix = 0
            rest = rot
            for _ in range(arc.capacity):
                low = rest & -rest
                prefix |= low
                rest ^= low
            # The cursor lands one past the last picked token.
            cursors[key] = (cursor + prefix.bit_length()) % m
            chosen = ((prefix << cursor) | (prefix >> (m - cursor))) & full
            sends[key] = TokenSet(chosen)
        return sends

    def propose_vector(self, state: BatchState) -> Optional[VectorProposal]:
        """All arcs' laps at once on the batch kernel's possession plane.

        Mirrors :meth:`propose` exactly: arcs whose owners hold fewer
        tokens than the arc capacity ship everything and keep their
        cursor; the rest rotate their owned mask down by the cursor,
        strip the ``capacity`` lowest set bits, and advance the cursor
        one past the last picked token.  Rotation shifts stay below 64
        only while the whole universe fits one plane with a spare bit,
        so ``m > 63`` (or an empty universe) returns ``None`` and the
        engine permanently falls back to the scalar path for the run.
        """
        m = self.problem.num_tokens
        if m == 0 or m > 63 or state.planes != 1:
            return None
        np = state.np
        caps = state.arc_cap
        cursor = self._vec_cursor
        if cursor is None:
            cursor = self._vec_cursor = np.zeros(len(caps), dtype=np.uint64)
        owned = state.matrix[state.arc_src, 0]
        one = np.uint64(1)
        zero = np.uint64(0)
        m_u = np.uint64(m)
        full = np.uint64((1 << m) - 1)
        counts = np.bitwise_count(owned).astype(np.int64)
        # capacity >= 1 always, so a "hard" (cursor-advancing) arc has a
        # nonzero owner; everything else ships its whole owned set (which
        # is empty for ownerless arcs) and leaves its cursor alone.
        hard = counts >= caps
        rot = ((owned >> cursor) | (owned << (m_u - cursor))) & full
        prefix = np.zeros_like(owned)
        rest = rot.copy()
        last_low = np.zeros_like(owned)
        for k in range(int(caps.max(initial=0))):
            taking = hard & (caps > k)
            if not taking.any():
                break
            low = rest & ~(rest - one)
            low = np.where(taking, low, zero)
            prefix |= low
            rest ^= low
            last_low = np.where(low != zero, low, last_low)
        # The cursor lands one past the last picked token; the last pick
        # is the highest bit of the rotated prefix, so its bit length is
        # popcount(last_low - 1) + 1.
        advance = np.where(
            last_low != zero,
            np.bitwise_count(last_low - one).astype(np.uint64) + one,
            zero,
        )
        self._vec_cursor = np.where(hard, (cursor + advance) % m_u, cursor)
        chosen = ((prefix << cursor) | (prefix >> (m_u - cursor))) & full
        send = np.where(hard, chosen, owned)
        nonzero = np.nonzero(send)[0]
        return VectorProposal(arc_indices=nonzero, masks=send[nonzero])
