"""The Round-Robin heuristic (Section 5.1).

    "The round-robin strategy simply sends the circular queue of tokens
    over each link (skipping tokens it does not have).  This is the
    simplest of the heuristics, and can easily be computed locally as no
    information other than the set of tokens kept locally and the last
    token sent to each peer [is needed]."

Each sender keeps an independent cursor per outgoing arc into the circular
queue of all token ids ``0..m-1``.  Every timestep it fills the arc's
capacity with the next tokens it possesses, advancing the cursor past
tokens it lacks.  It never consults the peer's state, so it resends tokens
the peer already holds and duplicates what other peers send — exactly the
weaknesses the paper attributes to it.

The per-arc lap is computed by *rotating the possession bitmask* so the
cursor sits at bit 0, taking the lowest ``capacity`` set bits, and
rotating back — a handful of big-int operations instead of an O(m)
per-token scan, with identical picks and cursor movement.

Because the strategy is completely RNG-free and per-arc independent, it
is the flagship client of the batch kernel's vector proposal path:
:meth:`RoundRobinHeuristic.propose_vector` runs every arc's lap at once
on the kernel's bitplane possession matrix, replacing the per-arc
Python loop with a fixed number of whole-array ops.  Instead of
rotating (which would need cross-plane shifts), the vector lap splits
each owned row at the cursor — tokens at-or-above the cursor are the
first stretch of the circular queue, tokens below it the wrap-around —
takes the capacity lowest members of each part in turn, and lands the
cursor one past the last picked token.  The picks and cursor movement
are bit-identical to the scalar rotation for any number of planes, so
>64-token universes ride the vector path too and schedules match the
dict path byte for byte.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext
from repro.sim.batch import BatchState, VectorProposal
from repro.sim.bitplanes import highbit_rows, lowmask_rows, popcount_rows, take_rows

__all__ = ["RoundRobinHeuristic"]


class RoundRobinHeuristic(Heuristic):
    """Blind circular-queue flooding; uses only the sender's own tokens."""

    name = "round_robin"

    def on_reset(self) -> None:
        # One cursor per directed arc, all starting at token 0.
        self._cursor: Dict[Tuple[int, int], int] = {
            (arc.src, arc.dst): 0 for arc in self.problem.arcs
        }
        # Vector-path cursor array; allocated on the first vector step.
        # An engine either uses the vector path for a whole run or never
        # (the fallback condition is static per problem), so the dict
        # and array cursors are never mixed.
        self._vec_cursor: Any = None

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        m = problem.num_tokens
        sends: Dict[Tuple[int, int], TokenSet] = {}
        if m == 0:
            return sends
        full = (1 << m) - 1
        possession = ctx.possession
        cursors = self._cursor
        for arc in problem.arcs:
            owned = possession[arc.src].mask
            if not owned:
                continue
            key = (arc.src, arc.dst)
            cursor = cursors[key]
            if owned.bit_count() < arc.capacity:
                # The whole lap fits without filling the capacity: send
                # everything and leave the cursor where it was.
                sends[key] = TokenSet(owned)
                continue
            # Rotate so the cursor token is bit 0; the next tokens in
            # queue order are then simply the lowest set bits.
            rot = ((owned >> cursor) | (owned << (m - cursor))) & full
            prefix = 0
            rest = rot
            for _ in range(arc.capacity):
                low = rest & -rest
                prefix |= low
                rest ^= low
            # The cursor lands one past the last picked token.
            cursors[key] = (cursor + prefix.bit_length()) % m
            chosen = ((prefix << cursor) | (prefix >> (m - cursor))) & full
            sends[key] = TokenSet(chosen)
        return sends

    def propose_vector(self, state: BatchState) -> Optional[VectorProposal]:
        """All arcs' laps at once on the batch kernel's bitplane matrix.

        Mirrors :meth:`propose` exactly: arcs whose owners hold fewer
        tokens than the arc capacity ship everything and keep their
        cursor; the rest take the next ``capacity`` owned tokens in
        circular-queue order and advance the cursor one past the last
        pick.  The rotation is decomposed plane-safely: the rotated
        mask's low bits are the owned tokens at-or-above the cursor
        (ascending), followed by the wrap-around tokens below it, so
        taking the capacity lowest members of those two splits in order
        reproduces the scalar ``rot``/strip lap for any plane count.
        The scalar cursor update ``(cursor + prefix.bit_length()) % m``
        telescopes to ``(last_token + 1) % m`` in both the wrapped and
        unwrapped cases, which is what the split computes.
        """
        m = self.problem.num_tokens
        if m == 0:
            return None
        np = state.np
        caps = state.arc_cap
        cursor = self._vec_cursor
        if cursor is None:
            cursor = self._vec_cursor = np.zeros(len(caps), dtype=np.int64)
        matrix = state.matrix
        owned = matrix[state.arc_src]
        counts = popcount_rows(owned)
        # capacity >= 1 always, so a "hard" (cursor-advancing) arc has a
        # nonzero owner; everything else ships its whole owned set (which
        # is empty for ownerless arcs) and leaves its cursor alone.
        hard = counts >= caps
        below = lowmask_rows(cursor, state.planes)
        ahead = owned & ~below  # tokens >= cursor: the lap's first stretch
        wrap = owned & below  # tokens < cursor: the wrap-around
        ahead_counts = popcount_rows(ahead)
        quota = np.where(hard, caps, 0)
        picked_ahead = take_rows(ahead, quota)
        picked_wrap = take_rows(wrap, np.maximum(quota - ahead_counts, 0))
        chosen = picked_ahead | picked_wrap
        # Last pick in queue order: the highest wrap pick if any,
        # else the highest ahead pick (hard rows always pick >= 1).
        last_wrap = highbit_rows(picked_wrap)
        last = np.where(last_wrap >= 0, last_wrap, highbit_rows(picked_ahead))
        self._vec_cursor = np.where(hard, (last + 1) % m, cursor)
        send = np.where(hard[:, None], chosen, owned)
        nonzero = np.nonzero(send.any(axis=1))[0]
        masks = send[nonzero]
        if state.planes == 1:
            masks = masks[:, 0]
        return VectorProposal(arc_indices=nonzero, masks=masks)
