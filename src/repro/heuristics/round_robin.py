"""The Round-Robin heuristic (Section 5.1).

    "The round-robin strategy simply sends the circular queue of tokens
    over each link (skipping tokens it does not have).  This is the
    simplest of the heuristics, and can easily be computed locally as no
    information other than the set of tokens kept locally and the last
    token sent to each peer [is needed]."

Each sender keeps an independent cursor per outgoing arc into the circular
queue of all token ids ``0..m-1``.  Every timestep it fills the arc's
capacity with the next tokens it possesses, advancing the cursor past
tokens it lacks.  It never consults the peer's state, so it resends tokens
the peer already holds and duplicates what other peers send — exactly the
weaknesses the paper attributes to it.

The per-arc lap is computed by *rotating the possession bitmask* so the
cursor sits at bit 0, taking the lowest ``capacity`` set bits, and
rotating back — a handful of big-int operations instead of an O(m)
per-token scan, with identical picks and cursor movement.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext

__all__ = ["RoundRobinHeuristic"]


class RoundRobinHeuristic(Heuristic):
    """Blind circular-queue flooding; uses only the sender's own tokens."""

    name = "round_robin"

    def on_reset(self) -> None:
        # One cursor per directed arc, all starting at token 0.
        self._cursor: Dict[Tuple[int, int], int] = {
            (arc.src, arc.dst): 0 for arc in self.problem.arcs
        }

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        m = problem.num_tokens
        sends: Dict[Tuple[int, int], TokenSet] = {}
        if m == 0:
            return sends
        full = (1 << m) - 1
        possession = ctx.possession
        cursors = self._cursor
        for arc in problem.arcs:
            owned = possession[arc.src].mask
            if not owned:
                continue
            key = (arc.src, arc.dst)
            cursor = cursors[key]
            if owned.bit_count() < arc.capacity:
                # The whole lap fits without filling the capacity: send
                # everything and leave the cursor where it was.
                sends[key] = TokenSet(owned)
                continue
            # Rotate so the cursor token is bit 0; the next tokens in
            # queue order are then simply the lowest set bits.
            rot = ((owned >> cursor) | (owned << (m - cursor))) & full
            prefix = 0
            rest = rot
            for _ in range(arc.capacity):
                low = rest & -rest
                prefix |= low
                rest ^= low
            # The cursor lands one past the last picked token.
            cursors[key] = (cursor + prefix.bit_length()) % m
            chosen = ((prefix << cursor) | (prefix >> (m - cursor))) & full
            sends[key] = TokenSet(chosen)
        return sends
