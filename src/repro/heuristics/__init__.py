"""The five Section 5.1 heuristics behind one common interface.

``STANDARD_HEURISTICS`` builds one fresh instance of each, in the order
the paper introduces them, for sweep drivers that compare all five.
"""

from typing import Callable, Dict, List

from repro.heuristics.bandwidth import BandwidthHeuristic
from repro.heuristics.base import Heuristic, rarity_order, sample_tokens
from repro.heuristics.global_greedy import GlobalGreedyHeuristic
from repro.heuristics.local_rarest import LocalRarestHeuristic
from repro.heuristics.random_heuristic import RandomHeuristic
from repro.heuristics.round_robin import RoundRobinHeuristic
from repro.heuristics.sequential import SequentialHeuristic

__all__ = [
    "BandwidthHeuristic",
    "GlobalGreedyHeuristic",
    "Heuristic",
    "HEURISTIC_FACTORIES",
    "LocalRarestHeuristic",
    "RandomHeuristic",
    "RoundRobinHeuristic",
    "SequentialHeuristic",
    "make_heuristic",
    "rarity_order",
    "sample_tokens",
    "standard_heuristics",
]

#: The paper's five heuristics, in introduction order.  The streaming
#: SequentialHeuristic is intentionally not listed: sweep drivers compare
#: the paper's set, and callers opt into extras explicitly.
HEURISTIC_FACTORIES: Dict[str, Callable[[], Heuristic]] = {
    "round_robin": RoundRobinHeuristic,
    "random": RandomHeuristic,
    "local": LocalRarestHeuristic,
    "bandwidth": BandwidthHeuristic,
    "global": GlobalGreedyHeuristic,
}


def make_heuristic(name: str) -> Heuristic:
    """Instantiate a heuristic by its paper name."""
    try:
        factory = HEURISTIC_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {name!r}; choose from "
            f"{sorted(HEURISTIC_FACTORIES)}"
        ) from None
    return factory()


def standard_heuristics() -> List[Heuristic]:
    """Fresh instances of all five heuristics, in paper order."""
    return [factory() for factory in HEURISTIC_FACTORIES.values()]
