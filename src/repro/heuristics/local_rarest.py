"""The Local heuristic — rarest-random with request subdivision (§5.1).

    "The design of our local heuristic is based on the commonly proposed
    notion of 'rarest random'. ... we have assumed that at every time
    step, the step's initial aggregate need and knowledge are distributed
    to all vertices. ... To avoid the problem where two peers send the
    same 'rare' block in the same direction, our heuristic subdivides a
    vertex's needs to their peers.  This is analogous to a request for
    blocks. ... To handle the general problem, we distribute both
    aggregates of what vertices want and what they do not have."

Receiver-driven: each vertex ranks the tokens it lacks rarest-first
(aggregate possession counts, random tie-break, globally-needed tokens
preferred among equals) and assigns each to exactly one in-neighbor that
holds it and has request budget left on the connecting arc.  Senders then
ship exactly the requested tokens, so no two peers push the same rare
token at the same vertex in the same turn.

Like the other flooding heuristics, it requests every token it lacks —
not just the ones it wants — so that intermediaries keep relaying; the
paper's Figure 4 shows the resulting bandwidth is insensitive to how many
vertices actually want the file.

The aggregate need vector is maintained *incrementally*: kernel-backed
contexts read the live ``token_deficit`` vector that
:class:`repro.sim.SimState` updates inside its O(delta) gain fold;
snapshot contexts fall back to diffing possession vectors.  The inner
assignment loop works on raw bitmasks, inverts supplier masks into
per-token holder lists, and replaces the ``max(key=...)`` supplier scan
with an explicit loop that consumes the RNG identically, so schedules
are byte-identical to the pre-rewrite implementation (see
``tests/sim/test_incremental_equivalence.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext
from repro.heuristics.vector_common import (
    InArcTables,
    build_in_tables,
    empty_vector_proposal,
    grouped_requests,
    pack_assignments,
)
from repro.sim.batch import BatchState, VectorProposal

__all__ = ["LocalRarestHeuristic"]


class LocalRarestHeuristic(Heuristic):
    """Rarest-random flooding with per-peer request subdivision."""

    name = "local"

    def on_reset(self) -> None:
        problem = self.problem
        self._want_masks: List[int] = [w.mask for w in problem.want]
        # Aggregate need (how many vertices still want each token) is
        # only materialised for snapshot contexts; kernel-backed runs
        # read the kernel's live ``token_deficit`` vector instead.
        self._need_counts: Optional[List[int]] = None
        self._prev_possession: List[TokenSet] = list(problem.have)
        # Reusable per-token holder lists (cleared after each vertex).
        self._holders: List[List[int]] = [[] for _ in range(problem.num_tokens)]
        # Per-vertex supplier arrays: in-neighbor ids, arc keys, caps.
        self._sup_srcs: List[List[int]] = []
        self._sup_keys: List[List[Tuple[int, int]]] = []
        self._sup_caps: List[List[int]] = []
        for v in range(problem.num_vertices):
            in_arcs = problem.in_arcs(v)
            self._sup_srcs.append([arc.src for arc in in_arcs])
            self._sup_keys.append([(arc.src, arc.dst) for arc in in_arcs])
            self._sup_caps.append([arc.capacity for arc in in_arcs])
        # Vector-path in-arc tables (global arc ids grouped by dst in
        # in-arc order); built lazily on the first vector step so scalar
        # runs never pay for them.
        self._vec_tables: Optional[InArcTables] = None

    def _refresh_need_counts(self, ctx: StepContext) -> List[int]:
        """Fold possession gains since the last turn into the aggregate
        need vector (the per-turn aggregate distribution the paper
        assumes).  Kernel-backed contexts never reach here — they read
        the kernel's live ``token_deficit`` vector directly."""
        want_masks = self._want_masks
        if self._need_counts is None:
            problem = self.problem
            need_counts = [0] * problem.num_tokens
            for v in range(problem.num_vertices):
                mm = want_masks[v] & ~problem.have[v].mask
                while mm:
                    low = mm & -mm
                    need_counts[low.bit_length() - 1] += 1
                    mm ^= low
            self._need_counts = need_counts
        need_counts = self._need_counts
        for v in range(ctx.problem.num_vertices):
            gained = ctx.possession[v] - self._prev_possession[v]
            if gained:
                newly = gained.mask & want_masks[v]
                while newly:
                    low = newly & -newly
                    need_counts[low.bit_length() - 1] -= 1
                    newly ^= low
                self._prev_possession[v] = ctx.possession[v]
        return need_counts

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        rng = ctx.rng
        rng_random = rng.random
        holder_counts = ctx.holder_counts
        state = ctx.state
        supply: Optional[List[int]] = None
        if state is not None:
            # Kernel path: the aggregate need vector is maintained by the
            # kernel's O(delta) gain fold; possession is read as raw ints.
            need_counts = state.token_demand()
            masks = state.possession_masks
            # Batch kernel: take the per-vertex in-neighbor supply unions
            # as one grouped array reduction instead of a Python loop per
            # vertex.  Only when the kernel's arc table is this step's
            # graph (dynamic engines hand per-turn problems, whose arcs
            # the kernel does not know).
            if ctx.problem is state.problem:
                supply_fn = getattr(state, "in_supply_masks", None)
                if supply_fn is not None:
                    supply = supply_fn()
        else:
            need_counts = self._refresh_need_counts(ctx)
            masks = [p.mask for p in ctx.possession]
        sup_srcs = self._sup_srcs
        # Rank encoding of the old sort key (holder_counts[t], -need_counts[t]):
        # both components live in [0, V], so h*(V+1) + (V-need) compares
        # exactly like the tuple — computed once per step, giving the
        # sorts a C-level key function.
        nv = problem.num_vertices
        rank = [
            holder_counts[t] * (nv + 1) + (nv - need_counts[t])
            for t in range(problem.num_tokens)
        ]
        rank_key = rank.__getitem__
        holders = self._holders
        sends: Dict[Tuple[int, int], int] = {}
        for v in range(problem.num_vertices):
            srcs = sup_srcs[v]
            if not srcs:
                continue
            if supply is not None:
                available = supply[v]
            else:
                available = 0
                for s in srcs:
                    available |= masks[s]
            lacking = available & ~masks[v]
            if not lacking:
                continue
            requests: List[int] = []
            mm = lacking
            while mm:
                low = mm & -mm
                requests.append(low.bit_length() - 1)
                mm ^= low
            # Invert supplier masks into per-token holder lists (supplier
            # indices ascending, i.e. in-arc order) so each request only
            # visits peers that actually hold it.
            for i, s in enumerate(srcs):
                mm = masks[s] & lacking
                while mm:
                    low = mm & -mm
                    holders[low.bit_length() - 1].append(i)
                    mm ^= low
            rng.shuffle(requests)
            # Rarest first; among equally rare, prefer globally needed tokens.
            requests.sort(key=rank_key)
            keys = self._sup_keys[v]
            budgets = self._sup_caps[v].copy()
            accum = [0] * len(srcs)
            remaining = sum(budgets)
            for token in requests:
                if not remaining:
                    # No supplier has budget left: no later request can be
                    # assigned and none would consume RNG (eligibility
                    # requires budget), so stopping is stream-identical.
                    break
                # Spread requests: ask the peer with the most spare budget.
                # Explicit max over (budget, rng.random()); first wins ties,
                # matching max(key=...) which only replaces on strictly
                # greater keys — and consuming one rng.random() per
                # eligible supplier in arc order, like the old key calls.
                best_i = -1
                best_b = -1
                best_r = 0.0
                for i in holders[token]:
                    b = budgets[i]
                    if b > 0:
                        r = rng_random()
                        if b > best_b or (b == best_b and r > best_r):
                            best_i = i
                            best_b = b
                            best_r = r
                if best_i < 0:
                    continue
                budgets[best_i] -= 1
                remaining -= 1
                accum[best_i] |= 1 << token
            for token in requests:
                holders[token].clear()
            for i, acc in enumerate(accum):
                if acc:
                    sends[keys[i]] = acc
        return {key: TokenSet(mask) for key, mask in sends.items()}

    def propose_vector(self, state: BatchState) -> Optional[VectorProposal]:
        """The rarest-random step as batched arrays.

        The receiver screen (supply unions, lacking masks, request
        lists, per-request holder slots) is computed for every vertex at
        once by :mod:`repro.heuristics.vector_common`; the per-candidate
        assignment core then consumes the engine RNG through the exact
        scalar call sequence — one ``rng.shuffle`` of the request list
        (the Fisher–Yates draws depend only on its length, so shuffling
        group ids is word-identical to shuffling tokens) and one
        ``rng.random()`` per eligible supplier in slot order — so
        schedules, traces, and ``rng.getstate()`` after the step are all
        byte-identical to :meth:`propose`.  Returns ``None`` (scalar
        fallback) for foreign kernels or empty universes.
        """
        problem = self.problem
        if state.problem is not problem or problem.num_tokens == 0:
            return None
        np = state.np
        tables = self._vec_tables
        if tables is None:
            tables = self._vec_tables = build_in_tables(state)
        grouped = grouped_requests(state, tables)
        if grouped is None:
            return empty_vector_proposal(np)
        rng = self.rng
        rng_random = rng.random
        need_counts = state.token_demand()
        holder_counts = state.holder_counts
        nv = problem.num_vertices
        rank = [
            holder_counts[t] * (nv + 1) + (nv - need_counts[t])
            for t in range(problem.num_tokens)
        ]
        # Per-request ranks, gathered once for the whole step: the
        # per-candidate sorts below key on group ids, so the shuffle
        # permutes ``range(gs, ge)`` (identical word consumption — the
        # Fisher–Yates stream depends only on length) and the stable
        # sort sees the same key sequence the scalar token sort does.
        grank: List[int] = np.array(rank, dtype=np.int64)[
            grouped.tokens_arr
        ].tolist()
        rank_of = grank.__getitem__
        sup_caps = self._sup_caps
        starts = tables.starts
        group_ranges = grouped.group_ranges
        g_tok = grouped.tokens
        g_hs = grouped.holder_start
        g_he = grouped.holder_end
        slots = grouped.slots
        asg_pos: List[int] = []
        asg_tok: List[int] = []
        pos_append = asg_pos.append
        tok_append = asg_tok.append
        for r, v in enumerate(grouped.cand):
            gs = group_ranges[r]
            ge = group_ranges[r + 1]
            order = list(range(gs, ge))
            rng.shuffle(order)
            order.sort(key=rank_of)
            budgets = sup_caps[v].copy()
            remaining = sum(budgets)
            base = starts[v]
            for g in order:
                if not remaining:
                    break
                # The scalar supplier-max verbatim: one draw per
                # eligible holder in slot order, lexicographic
                # (budget, r) max, first wins ties.
                best_i = -1
                best_b = -1
                best_r = 0.0
                for i in slots[g_hs[g] : g_he[g]]:
                    b = budgets[i]
                    if b > 0:
                        rr = rng_random()
                        if b > best_b or (b == best_b and rr > best_r):
                            best_i = i
                            best_b = b
                            best_r = rr
                if best_i < 0:
                    continue
                budgets[best_i] -= 1
                remaining -= 1
                pos_append(base + best_i)
                tok_append(g_tok[g])
        return pack_assignments(state, tables, asg_pos, asg_tok)
