"""The Local heuristic — rarest-random with request subdivision (§5.1).

    "The design of our local heuristic is based on the commonly proposed
    notion of 'rarest random'. ... we have assumed that at every time
    step, the step's initial aggregate need and knowledge are distributed
    to all vertices. ... To avoid the problem where two peers send the
    same 'rare' block in the same direction, our heuristic subdivides a
    vertex's needs to their peers.  This is analogous to a request for
    blocks. ... To handle the general problem, we distribute both
    aggregates of what vertices want and what they do not have."

Receiver-driven: each vertex ranks the tokens it lacks rarest-first
(aggregate possession counts, random tie-break, globally-needed tokens
preferred among equals) and assigns each to exactly one in-neighbor that
holds it and has request budget left on the connecting arc.  Senders then
ship exactly the requested tokens, so no two peers push the same rare
token at the same vertex in the same turn.

Like the other flooding heuristics, it requests every token it lacks —
not just the ones it wants — so that intermediaries keep relaying; the
paper's Figure 4 shows the resulting bandwidth is insensitive to how many
vertices actually want the file.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.tokenset import EMPTY_TOKENSET, TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext

__all__ = ["LocalRarestHeuristic"]


class LocalRarestHeuristic(Heuristic):
    """Rarest-random flooding with per-peer request subdivision."""

    name = "local"

    def on_reset(self) -> None:
        problem = self.problem
        # Aggregate need: how many vertices still want each token.
        self._need_counts: List[int] = [0] * problem.num_tokens
        for v in range(problem.num_vertices):
            for t in problem.want[v] - problem.have[v]:
                self._need_counts[t] += 1
        self._prev_possession: List[TokenSet] = list(problem.have)

    def _refresh_need_counts(self, ctx: StepContext) -> None:
        """Fold possession gains since the last turn into the aggregate
        need vector (the per-turn aggregate distribution the paper
        assumes)."""
        for v in range(ctx.problem.num_vertices):
            gained = ctx.possession[v] - self._prev_possession[v]
            if gained:
                for t in gained & ctx.problem.want[v]:
                    self._need_counts[t] -= 1
                self._prev_possession[v] = ctx.possession[v]

    def propose(self, ctx: StepContext) -> Proposal:
        self._refresh_need_counts(ctx)
        problem = ctx.problem
        rng = ctx.rng
        holder_counts = ctx.holder_counts
        need_counts = self._need_counts
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for v in range(problem.num_vertices):
            in_arcs = problem.in_arcs(v)
            if not in_arcs:
                continue
            available = EMPTY_TOKENSET
            for arc in in_arcs:
                available = available | ctx.possession[arc.src]
            lacking = available - ctx.possession[v]
            if not lacking:
                continue
            requests = list(lacking)
            rng.shuffle(requests)
            # Rarest first; among equally rare, prefer globally needed tokens.
            requests.sort(key=lambda t: (holder_counts[t], -need_counts[t]))
            budget = {(arc.src, arc.dst): arc.capacity for arc in in_arcs}
            suppliers = list(in_arcs)
            for token in requests:
                candidates = [
                    arc
                    for arc in suppliers
                    if budget[(arc.src, arc.dst)] > 0
                    and token in ctx.possession[arc.src]
                ]
                if not candidates:
                    continue
                # Spread requests: ask the peer with the most spare budget.
                best = max(
                    candidates,
                    key=lambda arc: (budget[(arc.src, arc.dst)], rng.random()),
                )
                key = (best.src, best.dst)
                budget[key] -= 1
                sends[key] = sends.get(key, EMPTY_TOKENSET).add(token)
        return sends
