"""Shared batched request extraction for the RNG-bound vector paths.

The request-subdividing heuristics (Local, Sequential) run the same
receiver-side screen every step: find the vertices whose in-neighbors
supply tokens they lack, then — per candidate — the ascending list of
lacking tokens (the request list) and, per request, the ascending
supplier slots that hold it.  The scalar loops do this with per-vertex
big-int bit extraction; this module computes it for *every candidate at
once* from the batch kernel's bitplane matrices:

1. expand each candidate's in-arc segment into (candidate, slot) pairs,
2. intersect each pair's supplier possession row with the candidate's
   lacking row and expand the result to (pair, token) entries — via a
   byte-level nonzero plus a 256-entry bit-position table, so the scan
   runs over one byte per 8 tokens and everything after it is
   proportional to the entries that actually exist,
3. stable-sort the entries by (candidate, token) — slot order survives —
   so every (candidate, token) group is a contiguous run of ascending
   holder slots, and the group tokens per candidate are exactly the
   scalar request list in ascending order.

Everything is returned as plain Python lists: the consuming inner loops
index and slice them at C speed without per-element numpy scalar boxing.
The layout is proven against the scalar loops by the batch-equivalence
differential grid and the RNG-stream hypothesis suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.sim.batch import BatchState, VectorProposal

__all__ = [
    "InArcTables",
    "GroupedRequests",
    "build_in_tables",
    "grouped_requests",
    "empty_vector_proposal",
]

#: Lazily built byte-expansion tables: per byte value, its popcount,
#: the start of its run in the flattened bit-position table, and the
#: flattened ascending bit positions themselves (1024 entries total).
_tables: Optional[Tuple[Any, Any, Any]] = None


def _byte_tables(np: Any) -> Tuple[Any, Any, Any]:
    global _tables
    if _tables is None:
        positions = [[b for b in range(8) if v >> b & 1] for v in range(256)]
        pop8 = np.array([len(p) for p in positions], dtype=np.uint8)
        bit_start = np.zeros(256, dtype=np.int64)
        bit_start[1:] = np.cumsum(pop8[:-1])
        bits_flat = np.array(
            [b for p in positions for b in p], dtype=np.int64
        )
        _tables = (pop8, bit_start, bits_flat)
    return _tables


@dataclass(frozen=True)
class InArcTables:
    """Global arc ids grouped by destination, in ``in_arcs`` order.

    Positions ``starts[v]:starts[v + 1]`` of ``arc_ids`` are the arcs
    into vertex ``v``, in ``problem.in_arcs(v)`` order (the stable dst
    sort preserves arc-table order within a destination, which is how
    ``in_arcs`` is built).  ``src_sorted`` carries the matching source
    vertex per position for the pair gather.  ``slot_stride`` is the
    smallest power of two exceeding every in-arc segment length, so a
    ``(request, slot)`` pair packs into one integer as
    ``request * slot_stride + slot`` with shift/mask unpacking.
    """

    arc_ids: List[int]
    arc_ids_arr: Any  # (A,) int64 ndarray mirror of ``arc_ids``
    starts: List[int]
    starts_arr: Any  # (V + 1,) int64 ndarray mirror of ``starts``
    src_sorted: Any  # (A,) int64 ndarray of arc sources, dst-grouped
    slot_stride: int


@dataclass(frozen=True)
class GroupedRequests:
    """One step's candidate/request/holder structure, as flat lists.

    Candidate ``r`` (vertex ``cand[r]``) owns groups
    ``group_ranges[r]:group_ranges[r + 1]``; group ``g`` is one request:
    token ``tokens[g]``, held by the ascending supplier slots
    ``slots[holder_start[g]:holder_end[g]]``.  Groups within a candidate
    are token-ascending, so ``tokens[gs:ge]`` *is* the scalar request
    list before shuffling.  ``tokens_arr`` mirrors ``tokens`` as an
    int64 ndarray so consumers can gather per-request attributes (e.g.
    rarity ranks) in one vector op instead of a Python loop per group.
    """

    cand: List[int]
    group_ranges: List[int]
    tokens: List[int]
    holder_start: List[int]
    holder_end: List[int]
    slots: List[int]
    tokens_arr: Any


def build_in_tables(state: BatchState) -> InArcTables:
    """Build the dst-grouped in-arc tables for ``state``'s problem."""
    np = state.np
    arc_dst = state.arc_dst
    order = np.argsort(arc_dst, kind="stable")
    starts_arr = np.searchsorted(
        arc_dst[order], np.arange(state.problem.num_vertices + 1)
    ).astype(np.int64)
    seg_lens = starts_arr[1:] - starts_arr[:-1]
    max_seg = int(seg_lens.max()) if seg_lens.size else 0
    return InArcTables(
        arc_ids=order.tolist(),
        arc_ids_arr=order.astype(np.int64, copy=False),
        starts=starts_arr.tolist(),
        starts_arr=starts_arr,
        src_sorted=state.arc_src[order],
        slot_stride=1 << max_seg.bit_length(),
    )


def grouped_requests(
    state: BatchState, tables: InArcTables
) -> Optional[GroupedRequests]:
    """The step's request/holder structure, or ``None`` with no candidates.

    A candidate is a vertex lacking at least one token an in-neighbor
    holds; every lacking token therefore has at least one holder, so the
    per-candidate group tokens coincide exactly with the scalar loops'
    request lists.
    """
    np = state.np
    matrix = state.matrix
    lacking = state.in_supply_matrix() & ~matrix
    cand = np.nonzero(lacking.any(axis=1))[0]
    if cand.size == 0:
        return None
    starts_arr = tables.starts_arr
    seg_start = starts_arr[cand]
    seg_len = starts_arr[cand + 1] - seg_start
    total = int(seg_len.sum())
    # Flat (candidate, slot) pairs: candidate row id, slot within the
    # candidate's in-arc segment, and position in the dst-grouped table.
    ends = np.cumsum(seg_len)
    offs = np.arange(total, dtype=np.int64) - np.repeat(ends - seg_len, seg_len)
    pos = np.repeat(seg_start, seg_len) + offs
    rows = np.repeat(np.arange(cand.size, dtype=np.int64), seg_len)
    holders = matrix[tables.src_sorted[pos]] & lacking[cand][rows]
    # (pair, token) entries.  The uint8 view of the uint64 planes is
    # little-endian on every supported platform, so byte ``b`` of a row
    # covers tokens ``8b .. 8b + 7``; the nonzero scan runs over bytes
    # (one eighth of a per-bit scan, and empty pairs vanish for free)
    # and each nonzero byte expands through the 256-entry popcount /
    # bit-position tables.  Everything per-entry is fused into ONE
    # packed integer ``comb = (row * width + token) * stride + slot``:
    # the byte-level prefix (key base and slot, both constant across a
    # byte's entries) is computed per nonzero byte and repeated once,
    # the bit positions come from a pre-scaled table gather, and a
    # single sort of ``comb`` yields the (candidate, token, slot)
    # lexicographic order with slots unpacked by mask/shift — no
    # per-entry pair ids, no second gather, two repeats total.
    pop8, bit_start, bits_flat = _byte_tables(np)
    nbytes = 8 * state.planes
    width = 64 * state.planes
    stride = tables.slot_stride
    shift = stride.bit_length() - 1
    flat = holders.view(np.uint8).ravel()
    nz = np.flatnonzero(flat)
    vals = flat[nz]
    counts = pop8[vals].astype(np.int64)
    num_entries = int(counts.sum())
    ends_e = np.cumsum(counts)
    comb_bound = (cand.size * width) << shift
    dtype = np.int32 if comb_bound < 2**31 else np.int64
    rowbase = ((rows * width) << shift) + offs
    if nbytes & (nbytes - 1) == 0:
        byte_shift = nbytes.bit_length() - 1
        comb_b = (
            rowbase[nz >> byte_shift] + ((nz & (nbytes - 1)) << (shift + 3))
        ).astype(dtype, copy=False)
    else:
        comb_b = (
            rowbase[nz // nbytes] + ((nz % nbytes) << (shift + 3))
        ).astype(dtype, copy=False)
    idx = np.arange(num_entries, dtype=np.int64) + np.repeat(
        bit_start[vals] + counts - ends_e, counts
    )
    comb = np.repeat(comb_b, counts) + (bits_flat << shift).astype(dtype)[idx]
    # comb values are unique (one entry per (pair, token)), so the
    # default unstable introsort is order-equivalent to a stable sort
    # — and measurably faster than both timsort and a two-pass uint16
    # radix split at the entry counts the screen produces.
    entry_order = np.argsort(comb)
    comb_sorted = comb[entry_order]
    slots = comb_sorted & (stride - 1)
    key_sorted = comb_sorted >> shift
    bounds = np.flatnonzero(key_sorted[1:] != key_sorted[:-1]) + 1
    group_start = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
    group_end = np.concatenate((bounds, np.array([key_sorted.size], dtype=np.int64)))
    group_key = key_sorted[group_start]
    group_row = group_key // width
    tokens_arr = (group_key % width).astype(np.int64)
    return GroupedRequests(
        cand=cand.tolist(),
        group_ranges=np.searchsorted(group_row, np.arange(cand.size + 1)).tolist(),
        tokens=tokens_arr.tolist(),
        holder_start=group_start.tolist(),
        holder_end=group_end.tolist(),
        slots=slots.tolist(),
        tokens_arr=tokens_arr,
    )


def empty_vector_proposal(np: Any) -> VectorProposal:
    """A zero-send :class:`~repro.sim.batch.VectorProposal`."""
    return VectorProposal(
        arc_indices=np.zeros(0, dtype=np.int64),
        masks=np.zeros(0, dtype=np.uint64),
    )


def pack_assignments(
    state: BatchState,
    tables: InArcTables,
    asg_pos: List[int],
    asg_tok: List[int],
) -> VectorProposal:
    """Fold per-assignment ``(in-arc position, token)`` pairs into sends.

    The assignment loops record one flat pair per granted token instead
    of accumulating per-send bitmasks in Python; this packs them into
    the :class:`VectorProposal` arrays with one stable sort and one
    grouped OR.  Send order is ascending table position — candidates
    ascending, supplier slots ascending within each — which is exactly
    the scalar Local loop's proposal-dict insertion order.  (Not usable
    for heuristics whose dict order is chronological first-touch, like
    Sequential.)
    """
    np = state.np
    if not asg_pos:
        return empty_vector_proposal(np)
    planes = state.planes
    pos = np.array(asg_pos, dtype=np.int64)
    tok = np.array(asg_tok, dtype=np.int64)
    bit = np.uint64(1) << (tok & 63).astype(np.uint64)
    if planes == 1:
        order = np.argsort(pos, kind="stable")
        key_sorted = pos[order]
    else:
        key = pos * planes + (tok >> 6)
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
    starts = np.flatnonzero(
        np.concatenate((np.ones(1, dtype=bool), key_sorted[1:] != key_sorted[:-1]))
    )
    group_masks = np.bitwise_or.reduceat(bit[order], starts)
    group_key = key_sorted[starts]
    if planes == 1:
        arc_indices = tables.arc_ids_arr[group_key]
        return VectorProposal(arc_indices=arc_indices, masks=group_masks)
    group_pos = group_key // planes
    group_plane = group_key % planes
    # group_pos is sorted (key order), so runs mark distinct sends.
    new_send = np.concatenate(
        (np.ones(1, dtype=bool), group_pos[1:] != group_pos[:-1])
    )
    rows = np.cumsum(new_send) - 1
    send_pos = group_pos[new_send]
    masks = np.zeros((send_pos.size, planes), dtype=np.uint64)
    masks[rows, group_plane] = group_masks
    return VectorProposal(
        arc_indices=tables.arc_ids_arr[send_pos], masks=masks
    )
