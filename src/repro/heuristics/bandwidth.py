"""The Bandwidth heuristic (Section 5.1).

    "This bandwidth heuristic is designed on the principle that each
    vertex shall obtain from its peers in its next turn only tokens that
    it will eventually use.  We then determine whether a vertex will use
    the token by i) if it needs the token, or ii) if it is the closest
    one-hop-knowledge vertex to a node that needs it.  A one-hop-knowledge
    vertex is one which for a given token *could* obtain the token in a
    single turn given the opportunity."

Unlike the flooding heuristics, nothing moves toward vertices that will
never use it, so bandwidth tracks the actual demand.  The price is speed:
tokens advance along a single relay frontier instead of flooding down
every link, which is why the paper finds it slightly slower.

This is an *online* heuristic "albeit with global knowledge": the pull
decisions need possession state and graph distances for the whole graph.

Mechanics per timestep, per token ``t`` still needed somewhere:

1. Every needer with an in-neighbor already holding ``t`` pulls it
   directly (case i).
2. For needers that cannot get ``t`` this turn, the one-hop-knowledge set
   ``U(t)`` (vertices lacking ``t`` whose in-neighborhood holds it) is
   computed, and a multi-source BFS from ``U(t)`` labels every vertex with
   its closest one-hop vertex; the label of each far needer becomes a
   relay and pulls ``t`` (case ii).
3. Each pulling vertex assigns its pulls, rarest token first, to
   in-neighbors that hold them, subject to per-arc capacity budgets.
   Requests that do not fit are retried on later turns.

Wanter lists and per-vertex supplier arrays are precomputed at reset;
the per-step scans work on raw bitmasks and the supplier ``max`` is an
explicit loop consuming the RNG exactly as the old ``key=...`` scan did,
keeping schedules byte-identical to the pre-rewrite implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext

__all__ = ["BandwidthHeuristic"]


class BandwidthHeuristic(Heuristic):
    """Demand-driven cautious pulling; only eventually-used tokens move."""

    name = "bandwidth"

    def on_reset(self) -> None:
        problem = self.problem
        # Who wants each token, in ascending vertex order (the order the
        # old per-token range scan produced needers in).
        self._wanters: List[List[int]] = [[] for _ in range(problem.num_tokens)]
        for v in range(problem.num_vertices):
            for t in problem.want[v]:
                self._wanters[t].append(v)
        self._sup_srcs: List[List[int]] = []
        self._sup_keys: List[List[Tuple[int, int]]] = []
        self._sup_caps: List[List[int]] = []
        for v in range(problem.num_vertices):
            in_arcs = problem.in_arcs(v)
            self._sup_srcs.append([arc.src for arc in in_arcs])
            self._sup_keys.append([(arc.src, arc.dst) for arc in in_arcs])
            self._sup_caps.append([arc.capacity for arc in in_arcs])

    def _closest_one_hop_labels(
        self, ctx: StepContext, one_hop: List[int]
    ) -> List[int]:
        """Multi-source BFS labels: for every vertex, the id of the
        nearest one-hop-knowledge vertex (−1 when unreachable).

        Sources are seeded in increasing id order, so ties break toward
        the smallest vertex id deterministically.
        """
        problem = ctx.problem
        label = [-1] * problem.num_vertices
        queue: deque[int] = deque()
        for u in one_hop:
            label[u] = u
            queue.append(u)
        while queue:
            v = queue.popleft()
            for arc in problem.out_arcs(v):
                if label[arc.dst] == -1:
                    label[arc.dst] = label[v]
                    queue.append(arc.dst)
        return label

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        num_vertices = problem.num_vertices
        state = ctx.state
        masks = (
            state.possession_masks
            if state is not None
            else [p.mask for p in ctx.possession]
        )
        pulls: Dict[int, List[int]] = {}  # vertex -> tokens it pulls this turn

        # Which tokens each vertex could obtain in one turn: union of
        # in-neighbor possession.
        sup_srcs = self._sup_srcs
        one_hop_supply: List[int] = []
        for v in range(num_vertices):
            supply = 0
            for s in sup_srcs[v]:
                supply |= masks[s]
            one_hop_supply.append(supply)

        for token in range(problem.num_tokens):
            bit = 1 << token
            needers = [v for v in self._wanters[token] if not masks[v] & bit]
            if not needers:
                continue
            far_needers = []
            for v in needers:
                if one_hop_supply[v] & bit:
                    # case (i): the needer itself pulls
                    pulls.setdefault(v, []).append(token)
                else:
                    far_needers.append(v)
            if not far_needers:
                continue
            one_hop = [
                u
                for u in range(num_vertices)
                if not masks[u] & bit and one_hop_supply[u] & bit
            ]
            if not one_hop:
                continue  # token cannot advance this turn
            label = self._closest_one_hop_labels(ctx, one_hop)
            relays: Set[int] = set()
            for x in far_needers:
                if label[x] != -1:
                    relays.add(label[x])
            for u in sorted(relays):
                # case (ii): closest one-hop relay pulls
                pulls.setdefault(u, []).append(token)

        # Assign pulls to supplying in-arcs, rarest token first.
        rng = ctx.rng
        rng_random = rng.random
        holder_counts = ctx.holder_counts
        sends: Dict[Tuple[int, int], int] = {}
        holder_key = holder_counts.__getitem__
        for v, tokens in pulls.items():
            rng.shuffle(tokens)
            tokens.sort(key=holder_key)
            srcs = sup_srcs[v]
            keys = self._sup_keys[v]
            budgets = self._sup_caps[v].copy()
            sup_masks = [masks[s] for s in srcs]
            for token in tokens:
                bit = 1 << token
                best_i = -1
                best_b = -1
                best_r = 0.0
                for i, b in enumerate(budgets):
                    if b > 0 and sup_masks[i] & bit:
                        r = rng_random()
                        if b > best_b or (b == best_b and r > best_r):
                            best_i = i
                            best_b = b
                            best_r = r
                if best_i < 0:
                    continue
                budgets[best_i] -= 1
                key = keys[best_i]
                sends[key] = sends.get(key, 0) | bit
        return {key: TokenSet(mask) for key, mask in sends.items()}
