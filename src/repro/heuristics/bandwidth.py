"""The Bandwidth heuristic (Section 5.1).

    "This bandwidth heuristic is designed on the principle that each
    vertex shall obtain from its peers in its next turn only tokens that
    it will eventually use.  We then determine whether a vertex will use
    the token by i) if it needs the token, or ii) if it is the closest
    one-hop-knowledge vertex to a node that needs it.  A one-hop-knowledge
    vertex is one which for a given token *could* obtain the token in a
    single turn given the opportunity."

Unlike the flooding heuristics, nothing moves toward vertices that will
never use it, so bandwidth tracks the actual demand.  The price is speed:
tokens advance along a single relay frontier instead of flooding down
every link, which is why the paper finds it slightly slower.

This is an *online* heuristic "albeit with global knowledge": the pull
decisions need possession state and graph distances for the whole graph.

Mechanics per timestep, per token ``t`` still needed somewhere:

1. Every needer with an in-neighbor already holding ``t`` pulls it
   directly (case i).
2. For needers that cannot get ``t`` this turn, the one-hop-knowledge set
   ``U(t)`` (vertices lacking ``t`` whose in-neighborhood holds it) is
   computed, and a multi-source BFS from ``U(t)`` labels every vertex with
   its closest one-hop vertex; the label of each far needer becomes a
   relay and pulls ``t`` (case ii).
3. Each pulling vertex assigns its pulls, rarest token first, to
   in-neighbors that hold them, subject to per-arc capacity budgets.
   Requests that do not fit are retried on later turns.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from repro.core.tokenset import EMPTY_TOKENSET, TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext

__all__ = ["BandwidthHeuristic"]


class BandwidthHeuristic(Heuristic):
    """Demand-driven cautious pulling; only eventually-used tokens move."""

    name = "bandwidth"

    def _closest_one_hop_labels(
        self, ctx: StepContext, one_hop: List[int]
    ) -> List[int]:
        """Multi-source BFS labels: for every vertex, the id of the
        nearest one-hop-knowledge vertex (−1 when unreachable).

        Sources are seeded in increasing id order, so ties break toward
        the smallest vertex id deterministically.
        """
        problem = ctx.problem
        label = [-1] * problem.num_vertices
        queue = deque()
        for u in one_hop:
            label[u] = u
            queue.append(u)
        while queue:
            v = queue.popleft()
            for arc in problem.out_arcs(v):
                if label[arc.dst] == -1:
                    label[arc.dst] = label[v]
                    queue.append(arc.dst)
        return label

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        pulls: Dict[int, List[int]] = {}  # vertex -> tokens it pulls this turn

        def add_pull(v: int, token: int) -> None:
            pulls.setdefault(v, []).append(token)

        # Which tokens each vertex could obtain in one turn: union of
        # in-neighbor possession.
        one_hop_supply: List[TokenSet] = []
        for v in range(problem.num_vertices):
            supply = EMPTY_TOKENSET
            for arc in problem.in_arcs(v):
                supply = supply | ctx.possession[arc.src]
            one_hop_supply.append(supply)

        for token in range(problem.num_tokens):
            needers = [
                v
                for v in range(problem.num_vertices)
                if token in problem.want[v] and token not in ctx.possession[v]
            ]
            if not needers:
                continue
            far_needers = []
            for v in needers:
                if token in one_hop_supply[v]:
                    add_pull(v, token)  # case (i): the needer itself pulls
                else:
                    far_needers.append(v)
            if not far_needers:
                continue
            one_hop = [
                u
                for u in range(problem.num_vertices)
                if token not in ctx.possession[u] and token in one_hop_supply[u]
            ]
            if not one_hop:
                continue  # token cannot advance this turn
            label = self._closest_one_hop_labels(ctx, one_hop)
            relays: Set[int] = set()
            for x in far_needers:
                if label[x] != -1:
                    relays.add(label[x])
            for u in sorted(relays):
                add_pull(u, token)  # case (ii): closest one-hop relay pulls

        # Assign pulls to supplying in-arcs, rarest token first.
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for v, tokens in pulls.items():
            ctx.rng.shuffle(tokens)
            tokens.sort(key=lambda t: ctx.holder_counts[t])
            in_arcs = problem.in_arcs(v)
            budget = {(arc.src, arc.dst): arc.capacity for arc in in_arcs}
            for token in tokens:
                candidates = [
                    arc
                    for arc in in_arcs
                    if budget[(arc.src, arc.dst)] > 0
                    and token in ctx.possession[arc.src]
                ]
                if not candidates:
                    continue
                best = max(
                    candidates,
                    key=lambda arc: (budget[(arc.src, arc.dst)], ctx.rng.random()),
                )
                key = (best.src, best.dst)
                budget[key] -= 1
                sends[key] = sends.get(key, EMPTY_TOKENSET).add(token)
        return sends
