"""The Global heuristic — greedy coordinated diversity flooding (§5.1).

    "In addition to the aggregate vector, vertices have the ability to
    coordinate across each other at each timestep to ensure that they
    maximize diversity.  This also alleviates the need for vertices to
    request tokens from other vertices since there is global
    coordination.  Our implementation of this technique applies a greedy
    selection algorithm over the set of tokens and edges, and is thus not
    guaranteed to maximize diversity."

One coordinator plans the whole timestep.  Receivers are visited in
random rotation; each visit plans one arrival — the receiver's rarest
still-missing token that a capacity-bearing in-neighbor holds — and the
tentative holder count of that token is bumped immediately, so later
picks see the diversity created by earlier ones.  The rotation continues
until no receiver can add an arrival.  Coordination guarantees a vertex
never receives the same token twice in one turn.

The inner loops work on raw bitmasks with per-run precomputed arc
indices; the ``min``/``max`` selections are explicit loops that consume
the RNG exactly as the old ``key=...`` scans did (one draw per candidate
in the original candidate order, first element winning ties), keeping
schedules byte-identical to the pre-rewrite implementation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext

__all__ = ["GlobalGreedyHeuristic"]


class GlobalGreedyHeuristic(Heuristic):
    """Globally coordinated greedy rarest-first flooding."""

    name = "global"

    def on_reset(self) -> None:
        problem = self.problem
        arcs = problem.arcs
        self._arc_keys: List[Tuple[int, int]] = [(a.src, a.dst) for a in arcs]
        self._arc_caps: List[int] = [a.capacity for a in arcs]
        index_of = {(a.src, a.dst): i for i, a in enumerate(arcs)}
        # Per-vertex in-arc views: global arc indices and source vertices,
        # in problem.in_arcs order (the order the old scans iterated).
        self._in_idx: List[List[int]] = []
        self._in_srcs: List[List[int]] = []
        for v in range(problem.num_vertices):
            in_arcs = problem.in_arcs(v)
            self._in_idx.append([index_of[(a.src, a.dst)] for a in in_arcs])
            self._in_srcs.append([a.src for a in in_arcs])
        self._active_template: List[int] = [
            v for v in range(problem.num_vertices) if problem.in_arcs(v)
        ]

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        rng = ctx.rng
        rng_random = rng.random
        state = ctx.state
        masks = (
            state.possession_masks
            if state is not None
            else [p.mask for p in ctx.possession]
        )
        tentative_counts = list(ctx.holder_counts)
        budgets = self._arc_caps.copy()
        planned = [0] * problem.num_vertices
        in_idx = self._in_idx
        in_srcs = self._in_srcs
        sends: Dict[Tuple[int, int], int] = {}

        active = self._active_template.copy()
        rng.shuffle(active)
        while active:
            still_active = []
            for v in active:
                # Tokens some budgeted in-neighbor holds that v lacks and
                # is not already receiving this turn.
                idxs = in_idx[v]
                srcs = in_srcs[v]
                supply = 0
                usable: List[int] = []
                for j in range(len(idxs)):
                    if budgets[idxs[j]] > 0:
                        supply |= masks[srcs[j]]
                        usable.append(j)
                candidates = supply & ~masks[v] & ~planned[v]
                if not candidates:
                    continue
                # Explicit min over (tentative_count, rng.random()) across
                # candidate tokens in ascending order; first wins ties,
                # one RNG draw per candidate, like the old min(key=...).
                best_t = -1
                best_c = 0
                best_r = 0.0
                mm = candidates
                while mm:
                    low = mm & -mm
                    mm ^= low
                    t = low.bit_length() - 1
                    c = tentative_counts[t]
                    r = rng_random()
                    if best_t < 0 or c < best_c or (c == best_c and r < best_r):
                        best_t = t
                        best_c = c
                        best_r = r
                bit = 1 << best_t
                # Explicit max over (budget, rng.random()) across usable
                # suppliers that hold the token, in in-arc order.
                best_j = -1
                best_b = -1
                best_r2 = 0.0
                for j in usable:
                    if masks[srcs[j]] & bit:
                        b = budgets[idxs[j]]
                        r = rng_random()
                        if b > best_b or (b == best_b and r > best_r2):
                            best_j = j
                            best_b = b
                            best_r2 = r
                arc_index = idxs[best_j]
                budgets[arc_index] -= 1
                planned[v] |= bit
                tentative_counts[best_t] += 1
                key = self._arc_keys[arc_index]
                sends[key] = sends.get(key, 0) | bit
                still_active.append(v)
            active = still_active
        return {key: TokenSet(mask) for key, mask in sends.items()}
