"""The Global heuristic — greedy coordinated diversity flooding (§5.1).

    "In addition to the aggregate vector, vertices have the ability to
    coordinate across each other at each timestep to ensure that they
    maximize diversity.  This also alleviates the need for vertices to
    request tokens from other vertices since there is global
    coordination.  Our implementation of this technique applies a greedy
    selection algorithm over the set of tokens and edges, and is thus not
    guaranteed to maximize diversity."

One coordinator plans the whole timestep.  Receivers are visited in
random rotation; each visit plans one arrival — the receiver's rarest
still-missing token that a capacity-bearing in-neighbor holds — and the
tentative holder count of that token is bumped immediately, so later
picks see the diversity created by earlier ones.  The rotation continues
until no receiver can add an arrival.  Coordination guarantees a vertex
never receives the same token twice in one turn.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.tokenset import EMPTY_TOKENSET, TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext

__all__ = ["GlobalGreedyHeuristic"]


class GlobalGreedyHeuristic(Heuristic):
    """Globally coordinated greedy rarest-first flooding."""

    name = "global"

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        rng = ctx.rng
        tentative_counts = list(ctx.holder_counts)
        sends: Dict[Tuple[int, int], TokenSet] = {}
        planned: List[TokenSet] = [EMPTY_TOKENSET] * problem.num_vertices
        budget: Dict[Tuple[int, int], int] = {
            (arc.src, arc.dst): arc.capacity for arc in problem.arcs
        }

        active = [v for v in range(problem.num_vertices) if problem.in_arcs(v)]
        rng.shuffle(active)
        while active:
            still_active = []
            for v in active:
                # Tokens some budgeted in-neighbor holds that v lacks and
                # is not already receiving this turn.
                supply = EMPTY_TOKENSET
                usable_arcs = []
                for arc in problem.in_arcs(v):
                    if budget[(arc.src, arc.dst)] > 0:
                        supply = supply | ctx.possession[arc.src]
                        usable_arcs.append(arc)
                candidates = supply - ctx.possession[v] - planned[v]
                if not candidates:
                    continue
                token = min(
                    candidates, key=lambda t: (tentative_counts[t], rng.random())
                )
                suppliers = [
                    arc
                    for arc in usable_arcs
                    if token in ctx.possession[arc.src]
                ]
                best = max(
                    suppliers,
                    key=lambda arc: (budget[(arc.src, arc.dst)], rng.random()),
                )
                key = (best.src, best.dst)
                budget[key] -= 1
                planned[v] = planned[v].add(token)
                tentative_counts[token] += 1
                sends[key] = sends.get(key, EMPTY_TOKENSET).add(token)
                still_active.append(v)
            active = still_active
        return sends
