"""A sequential (in-order) variant of the Local heuristic.

Streaming clients fetch pieces in playback order rather than rarest
first.  This heuristic is the Local heuristic with the priority flipped:
receivers still subdivide requests across suppliers (no duplicate pulls
of one token per turn), but ask for the **lowest-indexed** missing
tokens first instead of the rarest.

It exists to quantify the classic swarm/streaming tradeoff against
:class:`repro.heuristics.LocalRarestHeuristic`: in-order fetching
minimizes playback startup delay (see
:mod:`repro.analysis.streaming`) while rarest-first minimizes the
overall makespan by keeping the token population diverse.

The assignment loop mirrors the rewritten Local heuristic: raw bitmask
supply unions and an explicit supplier-max that consumes the RNG exactly
as the old ``max(key=...)`` scan did, so schedules are byte-identical to
the pre-rewrite implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext

__all__ = ["SequentialHeuristic"]


class SequentialHeuristic(Heuristic):
    """In-order flooding with per-peer request subdivision."""

    name = "sequential"

    def on_reset(self) -> None:
        problem = self.problem
        self._sup_srcs: List[List[int]] = []
        self._sup_keys: List[List[Tuple[int, int]]] = []
        self._sup_caps: List[List[int]] = []
        for v in range(problem.num_vertices):
            in_arcs = problem.in_arcs(v)
            self._sup_srcs.append([arc.src for arc in in_arcs])
            self._sup_keys.append([(arc.src, arc.dst) for arc in in_arcs])
            self._sup_caps.append([arc.capacity for arc in in_arcs])

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        rng_random = ctx.rng.random
        state = ctx.state
        masks = (
            state.possession_masks
            if state is not None
            else [p.mask for p in ctx.possession]
        )
        # Batch kernel: vectorized in-neighbor supply unions (identical
        # values, so the RNG stream below is untouched).  Guarded by a
        # problem-identity check as in the Local heuristic.
        supply: Optional[List[int]] = None
        if state is not None and ctx.problem is state.problem:
            supply_fn = getattr(state, "in_supply_masks", None)
            if supply_fn is not None:
                supply = supply_fn()
        sup_srcs = self._sup_srcs
        sends: Dict[Tuple[int, int], int] = {}
        for v in range(problem.num_vertices):
            srcs = sup_srcs[v]
            if not srcs:
                continue
            if supply is not None:
                available = supply[v]
            else:
                available = 0
                for s in srcs:
                    available |= masks[s]
            lacking = available & ~masks[v]
            if not lacking:
                continue
            keys = self._sup_keys[v]
            budgets = self._sup_caps[v].copy()
            sup_masks = [masks[s] for s in srcs]
            remaining = sum(budgets)
            while lacking and remaining:  # lowest-indexed missing first;
                # stop when budgets are gone — no later token could be
                # assigned or consume RNG, so stopping is stream-identical.
                low = lacking & -lacking
                lacking ^= low
                best_i = -1
                best_b = -1
                best_r = 0.0
                for i, b in enumerate(budgets):
                    if b > 0 and sup_masks[i] & low:
                        r = rng_random()
                        if b > best_b or (b == best_b and r > best_r):
                            best_i = i
                            best_b = b
                            best_r = r
                if best_i < 0:
                    continue
                budgets[best_i] -= 1
                remaining -= 1
                key = keys[best_i]
                sends[key] = sends.get(key, 0) | low
        return {key: TokenSet(mask) for key, mask in sends.items()}
