"""A sequential (in-order) variant of the Local heuristic.

Streaming clients fetch pieces in playback order rather than rarest
first.  This heuristic is the Local heuristic with the priority flipped:
receivers still subdivide requests across suppliers (no duplicate pulls
of one token per turn), but ask for the **lowest-indexed** missing
tokens first instead of the rarest.

It exists to quantify the classic swarm/streaming tradeoff against
:class:`repro.heuristics.LocalRarestHeuristic`: in-order fetching
minimizes playback startup delay (see
:mod:`repro.analysis.streaming`) while rarest-first minimizes the
overall makespan by keeping the token population diverse.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.tokenset import EMPTY_TOKENSET, TokenSet
from repro.heuristics.base import Heuristic
from repro.sim import Proposal, StepContext

__all__ = ["SequentialHeuristic"]


class SequentialHeuristic(Heuristic):
    """In-order flooding with per-peer request subdivision."""

    name = "sequential"

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        rng = ctx.rng
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for v in range(problem.num_vertices):
            in_arcs = problem.in_arcs(v)
            if not in_arcs:
                continue
            available = EMPTY_TOKENSET
            for arc in in_arcs:
                available = available | ctx.possession[arc.src]
            lacking = available - ctx.possession[v]
            if not lacking:
                continue
            budget = {(arc.src, arc.dst): arc.capacity for arc in in_arcs}
            for token in lacking:  # TokenSet iterates in increasing order
                candidates = [
                    arc
                    for arc in in_arcs
                    if budget[(arc.src, arc.dst)] > 0
                    and token in ctx.possession[arc.src]
                ]
                if not candidates:
                    continue
                best = max(
                    candidates,
                    key=lambda arc: (budget[(arc.src, arc.dst)], rng.random()),
                )
                key = (best.src, best.dst)
                budget[key] -= 1
                sends[key] = sends.get(key, EMPTY_TOKENSET).add(token)
        return sends
