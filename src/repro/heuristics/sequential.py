"""A sequential (in-order) variant of the Local heuristic.

Streaming clients fetch pieces in playback order rather than rarest
first.  This heuristic is the Local heuristic with the priority flipped:
receivers still subdivide requests across suppliers (no duplicate pulls
of one token per turn), but ask for the **lowest-indexed** missing
tokens first instead of the rarest.

It exists to quantify the classic swarm/streaming tradeoff against
:class:`repro.heuristics.LocalRarestHeuristic`: in-order fetching
minimizes playback startup delay (see
:mod:`repro.analysis.streaming`) while rarest-first minimizes the
overall makespan by keeping the token population diverse.

The assignment loop mirrors the rewritten Local heuristic: raw bitmask
supply unions and an explicit supplier-max that consumes the RNG exactly
as the old ``max(key=...)`` scan did, so schedules are byte-identical to
the pre-rewrite implementation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.tokenset import TokenSet
from repro.heuristics.base import Heuristic
from repro.heuristics.vector_common import (
    InArcTables,
    build_in_tables,
    empty_vector_proposal,
    grouped_requests,
)
from repro.sim import Proposal, StepContext
from repro.sim.batch import BatchState, VectorProposal
from repro.sim.bitplanes import masks_to_matrix

__all__ = ["SequentialHeuristic"]


class SequentialHeuristic(Heuristic):
    """In-order flooding with per-peer request subdivision."""

    name = "sequential"

    def on_reset(self) -> None:
        problem = self.problem
        self._sup_srcs: List[List[int]] = []
        self._sup_keys: List[List[Tuple[int, int]]] = []
        self._sup_caps: List[List[int]] = []
        for v in range(problem.num_vertices):
            in_arcs = problem.in_arcs(v)
            self._sup_srcs.append([arc.src for arc in in_arcs])
            self._sup_keys.append([(arc.src, arc.dst) for arc in in_arcs])
            self._sup_caps.append([arc.capacity for arc in in_arcs])
        self._vec_tables: Optional[InArcTables] = None

    def propose(self, ctx: StepContext) -> Proposal:
        problem = ctx.problem
        rng_random = ctx.rng.random
        state = ctx.state
        masks = (
            state.possession_masks
            if state is not None
            else [p.mask for p in ctx.possession]
        )
        # Batch kernel: vectorized in-neighbor supply unions (identical
        # values, so the RNG stream below is untouched).  Guarded by a
        # problem-identity check as in the Local heuristic.
        supply: Optional[List[int]] = None
        if state is not None and ctx.problem is state.problem:
            supply_fn = getattr(state, "in_supply_masks", None)
            if supply_fn is not None:
                supply = supply_fn()
        sup_srcs = self._sup_srcs
        sends: Dict[Tuple[int, int], int] = {}
        for v in range(problem.num_vertices):
            srcs = sup_srcs[v]
            if not srcs:
                continue
            if supply is not None:
                available = supply[v]
            else:
                available = 0
                for s in srcs:
                    available |= masks[s]
            lacking = available & ~masks[v]
            if not lacking:
                continue
            keys = self._sup_keys[v]
            budgets = self._sup_caps[v].copy()
            sup_masks = [masks[s] for s in srcs]
            remaining = sum(budgets)
            while lacking and remaining:  # lowest-indexed missing first;
                # stop when budgets are gone — no later token could be
                # assigned or consume RNG, so stopping is stream-identical.
                low = lacking & -lacking
                lacking ^= low
                best_i = -1
                best_b = -1
                best_r = 0.0
                for i, b in enumerate(budgets):
                    if b > 0 and sup_masks[i] & low:
                        r = rng_random()
                        if b > best_b or (b == best_b and r > best_r):
                            best_i = i
                            best_b = b
                            best_r = r
                if best_i < 0:
                    continue
                budgets[best_i] -= 1
                remaining -= 1
                key = keys[best_i]
                sends[key] = sends.get(key, 0) | low
        return {key: TokenSet(mask) for key, mask in sends.items()}

    def propose_vector(self, state: BatchState) -> Optional[VectorProposal]:
        """The in-order step as batched arrays.

        Same batched receiver screen as the Local heuristic's vector
        path (:mod:`repro.heuristics.vector_common`), without the
        shuffle or rarest sort: requests are served token-ascending, the
        scalar loop's order.  Supplier draws consume the engine RNG
        through the exact scalar call sequence — one ``rng.random()``
        per eligible holder in slot order — and the per-arc dict
        insertion order (chronological first assignment) is reproduced
        by tracking first-touched slots.
        """
        problem = self.problem
        if state.problem is not problem or problem.num_tokens == 0:
            return None
        np = state.np
        tables = self._vec_tables
        if tables is None:
            tables = self._vec_tables = build_in_tables(state)
        grouped = grouped_requests(state, tables)
        if grouped is None:
            return empty_vector_proposal(np)
        rng_random = self.rng.random
        sup_caps = self._sup_caps
        arc_ids = tables.arc_ids
        starts = tables.starts
        group_ranges = grouped.group_ranges
        g_tok = grouped.tokens
        g_hs = grouped.holder_start
        g_he = grouped.holder_end
        slots = grouped.slots
        out_idx: List[int] = []
        out_masks: List[int] = []
        for r, v in enumerate(grouped.cand):
            gs = group_ranges[r]
            ge = group_ranges[r + 1]
            budgets = sup_caps[v].copy()
            remaining = sum(budgets)
            accum = [0] * len(budgets)
            touched: List[int] = []
            for g in range(gs, ge):  # tokens ascending: lowest-indexed first
                if not remaining:
                    break
                # The scalar supplier-max verbatim: one draw per
                # eligible holder in slot order, lexicographic
                # (budget, r) max, first wins ties.
                best_i = -1
                best_b = -1
                best_r = 0.0
                for i in slots[g_hs[g] : g_he[g]]:
                    b = budgets[i]
                    if b > 0:
                        rr = rng_random()
                        if b > best_b or (b == best_b and rr > best_r):
                            best_i = i
                            best_b = b
                            best_r = rr
                if best_i < 0:
                    continue
                budgets[best_i] -= 1
                remaining -= 1
                if not accum[best_i]:
                    touched.append(best_i)
                accum[best_i] |= 1 << g_tok[g]
            base = starts[v]
            for i in touched:
                out_idx.append(arc_ids[base + i])
                out_masks.append(accum[i])
        arc_indices = np.array(out_idx, dtype=np.int64)
        masks: Any
        if state.planes == 1:
            masks = np.array(out_masks, dtype=np.uint64)
        else:
            masks = masks_to_matrix(out_masks, problem.num_tokens)
        return VectorProposal(arc_indices=arc_indices, masks=masks)
