"""Shared infrastructure for the Section 5.1 heuristics.

Every heuristic is an object with a ``name``, a per-run ``reset``, and a
``propose`` that maps a :class:`repro.sim.StepContext` to the sends of one
timestep.  Heuristics are stateless across runs (``reset`` rebuilds any
per-run memory, e.g. Round-Robin's queue positions) so one instance can be
reused across trials.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.problem import Problem
from repro.core.tokenset import TokenSet
from repro.sim.engine import Proposal, StepContext

__all__ = ["Heuristic", "sample_tokens", "rarity_order"]


class Heuristic:
    """Base class: stores the problem and RNG at reset time.

    Subclasses override :meth:`propose`, and :meth:`on_reset` for any
    per-run precomputation.
    """

    name = "base"

    def __init__(self) -> None:
        self.problem: Problem | None = None
        self.rng: random.Random | None = None

    def reset(self, problem: Problem, rng: random.Random) -> None:
        self.problem = problem
        self.rng = rng
        self.on_reset()

    def on_reset(self) -> None:
        """Hook for subclass per-run initialization."""

    def propose(self, ctx: StepContext) -> Proposal:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def sample_tokens(tokens: TokenSet, count: int, rng: random.Random) -> TokenSet:
    """A uniform random subset of ``count`` members (all if fewer)."""
    members = list(tokens)
    if len(members) <= count:
        return tokens
    return TokenSet.from_iterable(rng.sample(members, count))


def rarity_order(
    tokens: TokenSet, holder_counts, rng: random.Random
) -> List[int]:
    """Members of ``tokens`` ordered rarest first, random tie-break.

    "Rarest random" (the Local heuristic's core): diversify what each
    vertex holds by preferring the tokens fewest vertices possess.
    """
    members = list(tokens)
    rng.shuffle(members)
    members.sort(key=lambda t: holder_counts[t])
    return members
