"""Shared infrastructure for the Section 5.1 heuristics.

Every heuristic is an object with a ``name``, a per-run ``reset``, and a
``propose`` that maps a :class:`repro.sim.StepContext` to the sends of one
timestep.  Heuristics are stateless across runs (``reset`` rebuilds any
per-run memory, e.g. Round-Robin's queue positions) so one instance can be
reused across trials.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.problem import Problem
from repro.core.tokenset import TokenSet
from repro.sim import Proposal, StepContext

__all__ = ["Heuristic", "sample_tokens", "rarity_order"]


class Heuristic:
    """Base class: stores the problem and RNG at reset time.

    Subclasses override :meth:`propose`, and :meth:`on_reset` for any
    per-run precomputation.

    Determinism contract (ocdlint OCD001): all randomness flows through
    :attr:`rng`, which defaults to a *seeded* ``random.Random(0)`` so a
    heuristic used before :meth:`reset` can never silently produce
    nondeterministic schedules.  :attr:`problem` raises before the first
    :meth:`reset` — there is no instance to consult until then.
    """

    name: str = "base"

    def __init__(self) -> None:
        self._problem: Optional[Problem] = None
        self._rng: random.Random = random.Random(0)

    @property
    def problem(self) -> Problem:
        """The instance of the current run; raises before :meth:`reset`."""
        if self._problem is None:
            raise RuntimeError(
                f"heuristic {self.name!r} used before reset(); the engine "
                f"calls reset(problem, rng) at the start of every run"
            )
        return self._problem

    @property
    def rng(self) -> random.Random:
        """The injected randomness source (seeded default before reset)."""
        return self._rng

    def reset(self, problem: Problem, rng: random.Random) -> None:
        self._problem = problem
        self._rng = rng
        self.on_reset()

    def on_reset(self) -> None:
        """Hook for subclass per-run initialization."""

    def propose(self, ctx: StepContext) -> Proposal:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def sample_tokens(tokens: TokenSet, count: int, rng: random.Random) -> TokenSet:
    """A uniform random subset of ``count`` members (all if fewer)."""
    members = list(tokens)
    if len(members) <= count:
        return tokens
    return TokenSet.from_iterable(rng.sample(members, count))


def rarity_order(
    tokens: TokenSet, holder_counts: Sequence[int], rng: random.Random
) -> List[int]:
    """Members of ``tokens`` ordered rarest first, random tie-break.

    "Rarest random" (the Local heuristic's core): diversify what each
    vertex holds by preferring the tokens fewest vertices possess.
    """
    members = list(tokens)
    rng.shuffle(members)
    members.sort(key=lambda t: holder_counts[t])
    return members
