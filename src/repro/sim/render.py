"""Human-readable renderings of schedules and runs.

Exact witnesses and heuristic traces on small instances are much easier
to inspect as text than as nested token-set dicts.  Two views:

* :func:`schedule_to_text` — one block per timestep listing its moves,
  followed by the per-vertex possession after the step;
* :func:`possession_timeline` — a vertex-by-timestep grid where each
  cell counts the tokens held (with a ``*`` once the vertex's want is
  satisfied), compact enough for instances of a few dozen vertices.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence

from repro.core.metrics import completion_times
from repro.core.problem import Problem
from repro.core.schedule import Schedule

__all__ = ["schedule_to_text", "possession_timeline"]


def _token_label(tokens: Iterable[int]) -> str:
    return "{" + ",".join(map(str, tokens)) + "}"


def schedule_to_text(
    problem: Problem, schedule: Schedule, max_vertices: int = 20
) -> str:
    """Step-by-step rendering with possession snapshots.

    For instances above ``max_vertices`` vertices the possession
    snapshot lines are elided (the move lists are still shown).
    """
    history = schedule.replay(problem)
    out = io.StringIO()
    out.write(
        f"schedule for {problem.name or 'problem'}: "
        f"{schedule.makespan} timesteps, {schedule.bandwidth} moves\n"
    )
    show_possession = problem.num_vertices <= max_vertices

    def write_possession(step_index: int) -> None:
        if not show_possession:
            return
        cells: List[str] = []
        for v in range(problem.num_vertices):
            held = history[step_index][v]
            satisfied = problem.want[v] <= held
            cells.append(f"{v}:{_token_label(held)}{'*' if satisfied else ''}")
        out.write("    holds " + "  ".join(cells) + "\n")

    write_possession(0)
    for i, step in enumerate(schedule.steps):
        moves = step.moves()
        if moves:
            rendered = ", ".join(
                f"{m.src}->{m.dst}:t{m.token}" for m in moves
            )
        else:
            rendered = "(idle)"
        out.write(f"  step {i + 1}: {rendered}\n")
        write_possession(i + 1)
    return out.getvalue()


def possession_timeline(
    problem: Problem,
    schedule: Schedule,
    vertices: Optional[Sequence[int]] = None,
) -> str:
    """A vertex x timestep grid of held-token counts.

    Cells show ``|p_i(v)|``; a trailing ``*`` marks the step at which
    the vertex's want is first fully covered.  The ``vertices`` argument
    restricts the rows (default: all).
    """
    history = schedule.replay(problem)
    if vertices is None:
        vertices = range(problem.num_vertices)
    times = completion_times(problem, schedule)
    width = max(3, len(str(problem.num_tokens)) + 1)
    out = io.StringIO()
    header = "vertex " + " ".join(
        f"t{i}".rjust(width) for i in range(len(history))
    )
    out.write(header + "\n")
    for v in vertices:
        cells: List[str] = []
        for i, possession in enumerate(history):
            count = len(possession[v])
            mark = "*" if times[v] == i else " "
            cells.append(f"{count}{mark}".rjust(width))
        out.write(f"{str(v).rjust(6)} " + " ".join(cells) + "\n")
    return out.getvalue()
