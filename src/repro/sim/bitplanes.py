"""TokenSet <-> dense bitplane-matrix conversions for the batch kernel.

The batch step kernel (:mod:`repro.sim.batch`) holds possession, want,
and usefulness state as dense ``(vertices, planes)`` uint64 matrices:
bit ``t % 64`` of plane ``t // 64`` in row ``v`` is set iff vertex ``v``
holds token ``t``.  Token universes larger than 64 simply spill into
additional planes, so one matrix row is the exact bit-for-bit image of
the corresponding :class:`repro.core.tokenset.TokenSet` mask.

This module is the single authority on that layout.  It provides the
row/mask converters, the batched set algebra (union / intersection /
difference / popcount) used by the kernel's vectorized reads, and the
plane-level ``take`` (lowest-``k``-members) that mirrors
:meth:`TokenSet.take`.  Everything here is proven equivalent to the
``TokenSet``/frozenset oracle by ``tests/sim/test_bitplanes.py``.

numpy is an *optional* dependency of the simulation layer (the exact
solvers require it regardless).  Import of this module never fails:
:data:`HAVE_NUMPY` records availability, :func:`require_numpy` raises a
clear :class:`MissingNumpyError` on use, and setting the environment
variable ``REPRO_NO_NUMPY=1`` forces the unavailable path (used by CI to
prove the pure-Python fallback keeps the suite green).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, List, Sequence

from repro.core.tokenset import TokenSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy
    import numpy.typing

    PlaneArray = numpy.typing.NDArray[numpy.uint64]
else:  # pragma: no cover - alias for runtime annotations
    PlaneArray = Any

__all__ = [
    "HAVE_NUMPY",
    "MissingNumpyError",
    "require_numpy",
    "plane_count",
    "mask_to_planes",
    "planes_to_mask",
    "masks_to_matrix",
    "matrix_to_masks",
    "tokensets_to_matrix",
    "matrix_to_tokensets",
    "planes_union",
    "planes_intersection",
    "planes_difference",
    "popcount_rows",
    "popcount_cols",
    "take_rows",
    "lowmask_rows",
    "highbit_rows",
]

_PLANE_BITS = 64
_PLANE_MASK = (1 << _PLANE_BITS) - 1


class MissingNumpyError(RuntimeError):
    """The batch kernel was requested but numpy is not importable."""


def _import_numpy() -> Any:
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
        return None
    return numpy


_np = _import_numpy()

#: Whether the dense bitplane backend can be used in this process.
#: ``False`` either because numpy is genuinely absent or because
#: ``REPRO_NO_NUMPY=1`` forces the fallback path for testing.
HAVE_NUMPY: bool = _np is not None


def require_numpy() -> Any:
    """Return the numpy module, or raise a clear, actionable error."""
    if _np is None:
        raise MissingNumpyError(
            "the batch simulation kernel needs numpy, which is not available "
            "in this environment (or is disabled via REPRO_NO_NUMPY); "
            "install numpy or select kernel='state' / kernel='auto'"
        )
    return _np


def plane_count(num_tokens: int) -> int:
    """Planes needed for a ``num_tokens``-token universe (at least 1).

    A zero-token universe still gets one (all-zero) plane so that state
    matrices always have a well-defined second dimension.
    """
    if num_tokens < 0:
        raise ValueError(f"num_tokens must be non-negative, got {num_tokens}")
    return max(1, (num_tokens + _PLANE_BITS - 1) // _PLANE_BITS)


def mask_to_planes(mask: int, planes: int) -> List[int]:
    """Split an int bitmask into ``planes`` uint64-sized plane values."""
    if mask < 0:
        raise ValueError(f"token bitmask must be non-negative, got {mask}")
    out = []
    for _ in range(planes):
        out.append(mask & _PLANE_MASK)
        mask >>= _PLANE_BITS
    if mask:
        raise ValueError(f"mask has bits beyond {planes} plane(s)")
    return out


def planes_to_mask(row: Sequence[int]) -> int:
    """Recombine one row of plane values into an int bitmask."""
    mask = 0
    for i, plane in enumerate(row):
        mask |= int(plane) << (i * _PLANE_BITS)
    return mask


def masks_to_matrix(masks: Sequence[int], num_tokens: int) -> PlaneArray:
    """Pack per-vertex int bitmasks into a dense ``(V, P)`` uint64 matrix.

    One ``int.to_bytes`` per row plus a single buffer reinterpretation —
    no per-plane Python arithmetic — so packing a proposal's worth of
    send masks (or an n=10^5 possession vector) stays a small fraction
    of the batched work it feeds.
    """
    np = require_numpy()
    planes = plane_count(num_tokens)
    nbytes = planes * _PLANE_BITS // 8
    try:
        buf = b"".join(mask.to_bytes(nbytes, "little") for mask in masks)
    except OverflowError:
        for mask in masks:
            mask_to_planes(mask, planes)  # pinpoint the bad row
        raise  # pragma: no cover — the offending row raised ValueError
    matrix = np.frombuffer(bytearray(buf), dtype="<u8").astype(
        np.uint64, copy=False
    )
    return matrix.reshape(len(masks), planes)


def matrix_to_masks(matrix: PlaneArray) -> List[int]:
    """Unpack a ``(V, P)`` plane matrix back into per-vertex int bitmasks.

    The single-plane fast path is one C-level ``tolist`` call; the
    multi-plane path folds each extra plane in with shifted ORs.
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected a (V, P) matrix, got shape {matrix.shape}")
    planes = matrix.shape[1]
    masks: List[int] = matrix[:, 0].tolist()
    for p in range(1, planes):
        shift = p * _PLANE_BITS
        for v, plane in enumerate(matrix[:, p].tolist()):
            if plane:
                masks[v] |= plane << shift
    return masks


def tokensets_to_matrix(sets: Iterable[TokenSet], num_tokens: int) -> PlaneArray:
    """Pack an iterable of :class:`TokenSet` into a ``(V, P)`` matrix."""
    return masks_to_matrix([s.mask for s in sets], num_tokens)


def matrix_to_tokensets(matrix: PlaneArray) -> List[TokenSet]:
    """Unpack a ``(V, P)`` matrix into a list of :class:`TokenSet`."""
    return [TokenSet(mask) for mask in matrix_to_masks(matrix)]


# ----------------------------------------------------------------------
# Batched set algebra (row-wise; shapes follow numpy broadcasting)
# ----------------------------------------------------------------------
def planes_union(a: PlaneArray, b: PlaneArray) -> PlaneArray:
    """Element-wise union of two plane arrays."""
    return a | b


def planes_intersection(a: PlaneArray, b: PlaneArray) -> PlaneArray:
    """Element-wise intersection of two plane arrays."""
    return a & b


def planes_difference(a: PlaneArray, b: PlaneArray) -> PlaneArray:
    """Element-wise difference ``a - b`` of two plane arrays."""
    return a & ~b


def popcount_rows(matrix: PlaneArray) -> PlaneArray:
    """Per-row popcount of a ``(V, P)`` matrix (i.e. ``len(TokenSet)``)."""
    np = require_numpy()
    return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)


def popcount_cols(matrix: PlaneArray) -> List[int]:
    """Per-token column popcounts of a ``(V, P)`` matrix.

    Entry ``t`` counts the rows whose bit ``t`` is set — the batched
    form of the per-token tallies (holder counts, aggregate demand) the
    scalar kernel maintains with per-bit Python loops.  The returned
    list has ``64 * P`` entries; trailing entries beyond the universe
    are zero by construction.
    """
    np = require_numpy()
    if matrix.ndim != 2:
        raise ValueError(f"expected a (V, P) matrix, got shape {matrix.shape}")
    bits = np.unpackbits(
        matrix.view(np.uint8).reshape(matrix.shape[0], -1),
        axis=1,
        bitorder="little",
    )
    out: List[int] = bits.sum(axis=0, dtype=np.int64).tolist()
    return out


def take_rows(matrix: PlaneArray, counts: PlaneArray) -> PlaneArray:
    """Per-row lowest-``count`` members, mirroring :meth:`TokenSet.take`.

    Row ``v`` of the result keeps the ``counts[v]`` lowest set bits of
    row ``v`` of ``matrix`` (all of them when it holds fewer).  Runs in
    ``O(P)`` vectorized passes: a cumulative-popcount prefix locates the
    plane where each row's quota is exhausted, and a per-plane select
    keeps earlier planes whole, masks the boundary plane down to its
    quota, and zeroes later planes.
    """
    np = require_numpy()
    if matrix.ndim != 2:
        raise ValueError(f"expected a (V, P) matrix, got shape {matrix.shape}")
    remaining = np.asarray(counts, dtype=np.int64).copy()
    if remaining.shape != (matrix.shape[0],):
        raise ValueError(
            f"counts shape {remaining.shape} does not match {matrix.shape[0]} rows"
        )
    if (remaining < 0).any():
        raise ValueError("counts must be non-negative")
    out = np.zeros_like(matrix)
    for p in range(matrix.shape[1]):
        plane = matrix[:, p].copy()
        pc = np.bitwise_count(plane).astype(np.int64)
        whole = pc <= remaining
        out[:, p] = np.where(whole, plane, 0)
        # Boundary rows: strip lowest bits one at a time until the quota
        # is met.  Each iteration handles every boundary row at once, so
        # the loop runs at most 63 times regardless of V.
        partial = ~whole
        quota = np.where(partial, remaining, 0)
        acc = np.zeros_like(plane)
        while partial.any():
            taking = partial & (quota > 0)
            if not taking.any():
                break
            low = plane & ~(plane - np.uint64(1))
            low = np.where(taking, low, 0)
            acc |= low
            plane ^= low
            quota -= taking.astype(np.int64)
            partial = taking
        out[:, p] |= acc
        remaining = np.maximum(remaining - pc, 0)
    return out


def lowmask_rows(counts: Any, planes: int) -> PlaneArray:
    """Per-row mask of the lowest ``counts[v]`` token *positions*.

    Row ``v`` of the result has bits ``0 .. counts[v] - 1`` set across
    however many planes that takes — the plane image of
    ``(1 << counts[v]) - 1``.  Used to split a possession row at a
    cursor position (tokens below vs at-or-above the cursor) without
    big-int shifts.  ``counts`` may be any integer array in
    ``[0, 64 * planes]``.
    """
    np = require_numpy()
    c = np.asarray(counts, dtype=np.int64)
    if c.ndim != 1:
        raise ValueError(f"expected 1-D counts, got shape {c.shape}")
    if planes < 1:
        raise ValueError(f"planes must be positive, got {planes}")
    if (c < 0).any() or (c > _PLANE_BITS * planes).any():
        raise ValueError(f"counts must lie in [0, {_PLANE_BITS * planes}]")
    # Bits this row claims inside each plane: clip(c - 64p, 0, 64).
    t = np.clip(
        c[:, None] - _PLANE_BITS * np.arange(planes, dtype=np.int64)[None, :],
        0,
        _PLANE_BITS,
    )
    # (1 << t) - 1 for t < 64; the t == 64 full plane needs no shift.
    shift = np.minimum(t, _PLANE_BITS - 1).astype(np.uint64)
    partial = (np.uint64(1) << shift) - np.uint64(1)
    return np.where(t == _PLANE_BITS, np.uint64(_PLANE_MASK), partial)


def highbit_rows(matrix: PlaneArray) -> Any:
    """Per-row index of the highest set bit, ``-1`` for all-zero rows.

    The vectorized ``mask.bit_length() - 1``: per plane, a smear-right
    fill turns the top set bit into a solid low mask whose popcount is
    the bit length; the highest nonzero plane wins.  Returns int64.
    """
    np = require_numpy()
    if matrix.ndim != 2:
        raise ValueError(f"expected a (V, P) matrix, got shape {matrix.shape}")
    out = np.full(matrix.shape[0], -1, dtype=np.int64)
    for p in range(matrix.shape[1] - 1, -1, -1):
        plane = matrix[:, p]
        smear = plane.copy()
        for s in (1, 2, 4, 8, 16, 32):
            smear |= smear >> np.uint64(s)
        length = np.bitwise_count(smear).astype(np.int64)
        hit = (out < 0) & (plane != 0)
        out = np.where(hit, _PLANE_BITS * p + length - 1, out)
    return out
