"""Synchronous round-based simulation of OCD distribution schedules."""

from repro.sim.engine import (
    Engine,
    HeuristicProtocol,
    HeuristicViolation,
    Proposal,
    RunResult,
    StallError,
    StepContext,
    run_heuristic,
)
from repro.sim.render import possession_timeline, schedule_to_text
from repro.sim.state import SimState

__all__ = [
    "Engine",
    "HeuristicProtocol",
    "HeuristicViolation",
    "Proposal",
    "RunResult",
    "SimState",
    "StallError",
    "StepContext",
    "possession_timeline",
    "run_heuristic",
    "schedule_to_text",
]
