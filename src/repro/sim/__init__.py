"""Synchronous round-based simulation of OCD distribution schedules."""

from repro.sim.batch import (
    KERNEL_NAMES,
    BatchState,
    MissingNumpyError,
    resolve_kernel,
)
from repro.sim.engine import (
    Engine,
    HeuristicProtocol,
    HeuristicViolation,
    Proposal,
    RunResult,
    StallError,
    StepContext,
    run_heuristic,
)
from repro.sim.render import possession_timeline, schedule_to_text
from repro.sim.state import SimState

__all__ = [
    "BatchState",
    "Engine",
    "HeuristicProtocol",
    "HeuristicViolation",
    "KERNEL_NAMES",
    "MissingNumpyError",
    "Proposal",
    "RunResult",
    "SimState",
    "StallError",
    "StepContext",
    "possession_timeline",
    "resolve_kernel",
    "run_heuristic",
    "schedule_to_text",
]
