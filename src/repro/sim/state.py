"""The shared incremental step kernel: :class:`SimState`.

Every simulation loop in the repo (the global-view :class:`repro.sim.Engine`,
the locality-enforcing LOCD runner, and the changing-conditions
:class:`repro.extensions.dynamic.DynamicEngine`) drives the same ground
truth: a possession vector that only ever grows, one timestep at a time.
Before this kernel existed each loop re-derived everything from scratch
every step — fresh tuple snapshots of possession, an O(V) success scan,
an O(E) useful-arc scan, and heuristic-side aggregate rebuilds.

:class:`SimState` replaces those rescans with incrementally maintained
state, so per-step cost is proportional to *change* (the number of tokens
that actually moved), not to the whole swarm:

* ``possession`` and ``holder_counts`` are live lists updated in place as
  arrivals land — engines hand them to heuristics through a zero-copy
  :class:`repro.sim.StepContext` view instead of copying per step;
* ``deficit[v]`` counts the tokens ``v`` still wants, and
  ``total_deficit`` their sum, making the success test O(1) per step;
* a **gain journal** records every ``(vertex, gained_tokens)`` event in
  application order; heuristics keep a cursor into it and fold deltas
  into their own aggregates (need counts, rarity tables) instead of
  diffing full possession vectors each turn;
* **dirty-vertex tracking** limits the stall test
  (:meth:`any_useful_arc`) to arcs whose endpoints changed since the
  last check — on a no-progress step nothing is dirty and the answer is
  a counter read.

The kernel is a *representation* change only: engines built on it emit
byte-identical schedules to the pre-kernel loops (enforced by
``tests/sim/test_incremental_equivalence.py`` against the frozen
reference implementation in :mod:`repro.sim.reference`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.problem import Problem
from repro.core.schedule import Timestep
from repro.core.tokenset import TokenSet

__all__ = ["SimState"]


class SimState:
    """Incrementally maintained ground-truth state of one simulated run.

    Parameters
    ----------
    problem:
        The instance being simulated.  Only ``have``/``want`` and the arc
        list are consulted; dynamic-conditions engines may validate
        proposals against per-turn graphs while sharing one kernel.
    possession:
        Optional starting possession (defaults to ``problem.have``).

    Mutation flows exclusively through :meth:`apply_timestep` (or
    :meth:`apply_arrival`); everything else is a read.  ``possession``
    and ``holder_counts`` are deliberately exposed as the live lists so
    engines can hand out zero-copy views — treat them as read-only.
    """

    __slots__ = (
        "problem",
        "possession",
        "possession_masks",
        "holder_counts",
        "deficit",
        "total_deficit",
        "_token_deficit",
        "_want_masks",
        "_journal",
        "_arc_useful",
        "_useful_count",
        "_incident",
        "_dirty",
        "_dirty_flags",
    )

    def __init__(
        self, problem: Problem, possession: Optional[Iterable[TokenSet]] = None
    ) -> None:
        self.problem = problem
        self.possession: List[TokenSet] = list(
            problem.have if possession is None else possession
        )
        if len(self.possession) != problem.num_vertices:
            raise ValueError(
                f"possession has {len(self.possession)} entries for "
                f"{problem.num_vertices} vertices"
            )
        #: Raw int view of ``possession``, kept in lockstep — heuristic
        #: hot loops read these to skip per-step attribute walks.
        self.possession_masks: List[int] = [p.mask for p in self.possession]
        counts = [0] * problem.num_tokens
        for tokens in self.possession:
            mm = tokens.mask
            while mm:
                low = mm & -mm
                counts[low.bit_length() - 1] += 1
                mm ^= low
        self.holder_counts: List[int] = counts
        self._want_masks: List[int] = [w.mask for w in problem.want]
        deficit: List[int] = []
        total = 0
        for v in range(problem.num_vertices):
            d = (self._want_masks[v] & ~self.possession_masks[v]).bit_count()
            deficit.append(d)
            total += d
        self.deficit: List[int] = deficit
        self.total_deficit: int = total
        # Per-token demand is materialised lazily by token_demand() so
        # heuristics that never rank by rarity do not pay for it.
        self._token_deficit: Optional[List[int]] = None
        #: Every possession gain ever applied, in application order,
        #: as ``(vertex, gained_bitmask)`` — raw ints, the currency of
        #: the heuristics' delta folds.
        self._journal: List[Tuple[int, int]] = []
        # Useful-arc tracking is built lazily on the first stall check;
        # most runs finish without ever needing it.
        self._arc_useful: Optional[List[bool]] = None
        self._useful_count = 0
        self._incident: Optional[List[List[int]]] = None
        self._dirty: List[int] = []
        self._dirty_flags = bytearray(problem.num_vertices)

    # ------------------------------------------------------------------
    # Versioned reads
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone state version: the number of gain events applied."""
        return len(self._journal)

    def gains_since(self, version: int) -> Sequence[Tuple[int, int]]:
        """The ``(vertex, gained_bitmask)`` events after ``version``.

        Heuristics record the version they last observed and fold only
        these deltas into their aggregates — O(delta), never O(V).
        """
        return self._journal[version:]

    def satisfied(self) -> bool:
        """Whether every want is covered — O(1) via the deficit counter."""
        return self.total_deficit == 0

    def outstanding(self, v: int) -> TokenSet:
        """Tokens ``v`` wants but does not yet possess."""
        return TokenSet(self._want_masks[v] & ~self.possession[v].mask)

    def token_demand(self) -> List[int]:
        """Per-token demand: how many vertices still want each token but
        lack it — the rarest-first heuristics' aggregate need vector.

        Materialised on first call (O(V * m) bit scan), then maintained
        for free inside the gain fold; callers treat it as read-only.
        """
        if self._token_deficit is None:
            token_deficit = [0] * self.problem.num_tokens
            for v in range(self.problem.num_vertices):
                mm = self._want_masks[v] & ~self.possession_masks[v]
                while mm:
                    low = mm & -mm
                    token_deficit[low.bit_length() - 1] += 1
                    mm ^= low
            self._token_deficit = token_deficit
        return self._token_deficit

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_timestep(self, timestep: Timestep) -> Dict[int, int]:
        """Apply one validated timestep; return arrival bitmasks per vertex.

        Arrivals are the union of everything sent *to* each destination
        this step (including tokens it already held — the LOCD runner
        records these into per-vertex knowledge), returned as raw int
        masks so callers that ignore them pay nothing.  Gains — arrivals
        the destination lacked — update possession, holder counts,
        deficits, and the journal.  Callers detect progress by comparing
        :attr:`version` around the call.
        """
        masks: Dict[int, int] = {}
        for (_src, dst), tokens in timestep.sends.items():
            prev = masks.get(dst)
            masks[dst] = tokens.mask if prev is None else prev | tokens.mask
        self.apply_arrivals(masks)
        return masks

    def apply_arrivals(self, arrivals: Dict[int, int]) -> None:
        """Apply pre-aggregated per-vertex arrival masks.

        The engine's proposal validation already walks every send, so it
        aggregates arrivals as it validates and hands them here directly
        rather than paying a second pass in :meth:`apply_timestep`.
        """
        possession_masks = self.possession_masks
        for dst, mask in arrivals.items():
            gained_mask = mask & ~possession_masks[dst]
            if gained_mask:
                self._apply_gain(dst, gained_mask)

    def apply_arrival(self, dst: int, tokens: TokenSet) -> TokenSet:
        """Deliver ``tokens`` to ``dst``; return what it actually gained."""
        gained_mask = tokens.mask & ~self.possession_masks[dst]
        if gained_mask:
            self._apply_gain(dst, gained_mask)
        return TokenSet(gained_mask)

    def _apply_gain(self, dst: int, gained_mask: int) -> None:
        new_mask = self.possession_masks[dst] | gained_mask
        self.possession_masks[dst] = new_mask
        self.possession[dst] = TokenSet(new_mask)
        counts = self.holder_counts
        token_deficit = self._token_deficit
        newly_wanted = gained_mask & self._want_masks[dst]
        mm = gained_mask
        if token_deficit is None:
            while mm:
                low = mm & -mm
                counts[low.bit_length() - 1] += 1
                mm ^= low
        else:
            while mm:
                low = mm & -mm
                t = low.bit_length() - 1
                counts[t] += 1
                if low & newly_wanted:
                    token_deficit[t] -= 1
                mm ^= low
        if newly_wanted:
            c = newly_wanted.bit_count()
            self.deficit[dst] -= c
            self.total_deficit -= c
        self._journal.append((dst, gained_mask))
        if self._arc_useful is not None and not self._dirty_flags[dst]:
            self._dirty_flags[dst] = 1
            self._dirty.append(dst)

    # ------------------------------------------------------------------
    # Stall detection
    # ------------------------------------------------------------------
    def any_useful_arc(self) -> bool:
        """Whether any arc could still deliver a token its head lacks.

        The first call scans every arc once and memoises per-arc
        usefulness; later calls recheck only arcs incident to vertices
        that gained tokens since the previous call.  On a no-progress
        step nothing is dirty, so the check is a counter read.
        """
        possession_masks = self.possession_masks
        arcs = self.problem.arcs
        if self._arc_useful is None:
            incident: List[List[int]] = [[] for _ in range(self.problem.num_vertices)]
            table: List[bool] = []
            count = 0
            for i, arc in enumerate(arcs):
                useful = bool(possession_masks[arc.src] & ~possession_masks[arc.dst])
                table.append(useful)
                count += useful
                incident[arc.src].append(i)
                incident[arc.dst].append(i)
            self._arc_useful = table
            self._incident = incident
            self._useful_count = count
            # Gains recorded before this first scan are already reflected.
            self._dirty.clear()
            for v in range(self.problem.num_vertices):
                self._dirty_flags[v] = 0
            return count > 0
        if self._dirty:
            table = self._arc_useful
            assert self._incident is not None
            for v in self._dirty:
                self._dirty_flags[v] = 0
                for i in self._incident[v]:
                    arc = arcs[i]
                    useful = bool(
                        possession_masks[arc.src] & ~possession_masks[arc.dst]
                    )
                    if useful != table[i]:
                        table[i] = useful
                        self._useful_count += 1 if useful else -1
            self._dirty.clear()
        return self._useful_count > 0

    def __repr__(self) -> str:
        return (
            f"<SimState v{self.version} deficit={self.total_deficit} "
            f"over {self.problem.num_vertices} vertices>"
        )
