"""Synchronous round-based simulator for OCD heuristics.

The engine owns the ground-truth state of one run: the possession vector
``p_i`` from Section 3.1, held in an incrementally maintained
:class:`repro.sim.state.SimState`.  Each timestep it hands the current
state to a heuristic as a read-only :class:`StepContext`, receives a
proposed set of sends, *validates the proposal against the model
constraints* (capacity and possession — a buggy heuristic raises
:class:`HeuristicViolation` instead of silently cheating), applies it,
and checks for success.

The engine presents a global view of the state.  Heuristics differ in how
much of that view they are allowed to read — e.g. Round-Robin only reads
the sender's own tokens while Global reads everything — and the strict
local-knowledge (LOCD) runner in :mod:`repro.locd` enforces locality
mechanically by constructing per-vertex knowledge views instead.

Per-step cost is O(delta), not O(swarm): the success test is a counter
read, the stall test rechecks only arcs whose endpoints changed, and the
:class:`StepContext` is a zero-copy view over the kernel's live state
(the pre-kernel loop snapshotted possession into fresh tuples every
step).  Schedules are byte-identical to the frozen pre-kernel loop in
:mod:`repro.sim.reference`, which the equivalence suite enforces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.core.metrics import ScheduleMetrics, evaluate_schedule
from repro.core.problem import Problem
from repro.core.schedule import Schedule, Timestep
from repro.core.tokenset import TokenSet
from repro.obs.metrics import MetricsRegistry, current_metrics
from repro.obs.tracer import Tracer, current_tracer
from repro.sim.bitplanes import plane_count
from repro.sim.state import SimState

__all__ = [
    "Proposal",
    "StepContext",
    "HeuristicProtocol",
    "HeuristicViolation",
    "StallError",
    "RunResult",
    "Engine",
    "run_heuristic",
    "emit_run_start",
    "emit_step_event",
    "resolve_state_factory",
]

Proposal = Mapping[Tuple[int, int], TokenSet]


def resolve_state_factory(
    kernel: Union[str, Callable[[Problem], SimState], None],
) -> Callable[[Problem], SimState]:
    """Resolve an engine ``kernel=`` argument to a state factory.

    The default scalar kernel resolves without touching
    :mod:`repro.sim.batch` at all, so the classic path stays import-free;
    anything else defers to :func:`repro.sim.batch.resolve_kernel`.
    """
    if kernel is None or kernel == "state":
        return SimState
    from repro.sim.batch import resolve_kernel

    return resolve_kernel(kernel)


class HeuristicViolation(RuntimeError):
    """A heuristic proposed a send that breaks the model constraints."""


class StallError(RuntimeError):
    """A heuristic stopped making progress while demand remains."""


class StepContext:
    """Read-only view handed to a heuristic at each timestep.

    When built by an engine, ``possession`` and ``holder_counts`` are the
    kernel's *live* lists (zero-copy) and ``state`` exposes the
    :class:`SimState` so heuristics can consume the gain journal;
    ``version`` records the state version the view was issued at.  The
    view is only valid until the engine applies the step's sends —
    heuristics must not cache ``possession`` entries across steps (use
    ``state.gains_since`` to observe change instead).

    Constructed directly with plain sequences (``state=None``) it is a
    self-contained snapshot, which the heuristic unit tests and the
    gossip-stale LOCD views rely on.
    """

    __slots__ = (
        "problem",
        "step",
        "possession",
        "holder_counts",
        "rng",
        "state",
        "version",
        "_outstanding",
    )

    def __init__(
        self,
        problem: Problem,
        step: int,
        possession: Sequence[TokenSet],
        holder_counts: Sequence[int],
        rng: random.Random,
        state: Optional[SimState] = None,
    ) -> None:
        self.problem = problem
        self.step = step
        self.possession = possession
        self.holder_counts = holder_counts
        self.rng = rng
        self.state = state
        self.version = state.version if state is not None else 0
        self._outstanding: Optional[int] = None

    def useful(self, src: int, dst: int) -> TokenSet:
        """Tokens ``src`` holds that ``dst`` lacks — the flooding notion
        of a send that "can increase knowledge"."""
        return self.possession[src] - self.possession[dst]

    def outstanding(self, v: int) -> TokenSet:
        """Tokens ``v`` wants but does not yet possess."""
        return self.problem.want[v] - self.possession[v]

    def total_outstanding(self) -> int:
        """Total wanted-but-missing token count across all vertices.

        O(1) when kernel-backed (the deficit counter); computed once and
        cached for snapshot contexts.
        """
        if self.state is not None:
            return self.state.total_deficit
        if self._outstanding is None:
            self._outstanding = sum(
                len(self.outstanding(v)) for v in range(self.problem.num_vertices)
            )
        return self._outstanding


class HeuristicProtocol(Protocol):
    """What the engine requires of a heuristic."""

    name: str

    def reset(self, problem: Problem, rng: random.Random) -> None:
        """Prepare per-run state before the first timestep."""

    def propose(self, ctx: StepContext) -> Proposal:
        """Return the sends for this timestep as ``{(src, dst): tokens}``."""


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    problem: Problem
    heuristic_name: str
    schedule: Schedule
    success: bool
    #: Total gossip facts learned over the run (LOCD runs only; 0 for the
    #: global-view engine).  See Knowledge.size_facts.
    knowledge_cost: int = 0

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    @property
    def bandwidth(self) -> int:
        return self.schedule.bandwidth

    def metrics(self) -> ScheduleMetrics:
        return evaluate_schedule(self.problem, self.schedule)


def emit_run_start(
    tracer: Tracer,
    engine: str,
    problem: Problem,
    heuristic: str,
    state: SimState,
    max_steps: int,
) -> None:
    """Emit the ``run_start`` event every simulation loop shares.

    Only deterministic facts of the instance and configuration — never
    wall-clock or process identity — so traces from identical seeds are
    byte-identical (the determinism suite compares raw bytes).

    Carries the full instance (``Problem.to_dict``) so a trace is
    self-contained: the replay validator (:mod:`repro.obs.analyze`)
    re-checks schedule validity from the trace alone, without the
    original problem file or a re-run.
    """
    tracer.emit(
        "run_start",
        {
            "engine": engine,
            "heuristic": heuristic,
            "problem": problem.name,
            "n": problem.num_vertices,
            "tokens": problem.num_tokens,
            "planes": plane_count(problem.num_tokens),
            "arcs": len(problem.arcs),
            "max_steps": max_steps,
            "total_deficit": state.total_deficit,
            "instance": problem.to_dict(),
        },
    )


def emit_step_event(
    tracer: Tracer,
    problem: Problem,
    state: SimState,
    timestep: Timestep,
    step: int,
    version_before: int,
    extra: Optional[Mapping[str, int]] = None,
) -> None:
    """Emit one per-timestep ``step`` event from the kernel's live state.

    Carries the dynamics the end-of-run aggregates hide: tokens moved
    and actually gained, the remaining per-vertex deficit, the
    holder-count histogram (rarest-token starvation shows up here), arc
    utilization, and ``transfers`` — the full per-arc token movement
    (sorted ``[src, dst, [tokens...]]`` triples), which is what lets
    ``trace-diff`` localize a divergence down to the token and lets
    ``trace-verify`` replay the run.  Callers only reach this behind a
    hoisted ``tracer.enabled`` check, so the untraced hot path never
    builds any of these payloads.
    """
    moves = 0
    for tokens in timestep.sends.values():
        moves += len(tokens)
    gained = 0
    for _vertex, mask in state.gains_since(version_before):
        gained += mask.bit_count()
    hist: Dict[int, int] = {}
    for count in state.holder_counts:
        hist[count] = hist.get(count, 0) + 1
    num_arcs = len(problem.arcs)
    fields: Dict[str, object] = {
        "step": step,
        "sends": len(timestep.sends),
        "moves": moves,
        "gained": gained,
        "deficit": state.total_deficit,
        "deficit_by_vertex": list(state.deficit),
        "holder_hist": [[count, hist[count]] for count in sorted(hist)],
        "arc_util": round(len(timestep.sends) / num_arcs, 6) if num_arcs else 0.0,
        "transfers": [
            [src, dst, sorted(timestep.sends[(src, dst)])]
            for src, dst in sorted(timestep.sends)
        ],
    }
    if extra:
        fields.update(extra)
    tracer.emit("step", fields)


class Engine:
    """Drives one heuristic over one problem to completion.

    Parameters
    ----------
    problem:
        The instance to solve.
    heuristic:
        Any object satisfying :class:`HeuristicProtocol`.
    rng:
        Randomness source for the heuristic; pass a seeded
        ``random.Random`` for reproducible runs.
    max_steps:
        Hard cap on simulated timesteps.  Defaults to a generous multiple
        of the Theorem 1 move bound ``m(n-1)``.
    stall_limit:
        Consecutive timesteps with an *empty* proposal after which the run
        raises :class:`StallError`.  Independently of this counter, the
        engine raises immediately when no arc anywhere carries a useful
        token while demand remains — possession only ever grows, so that
        state can never change again.  No-gain steps with non-empty
        proposals (e.g. Round-Robin cycling past tokens the peer already
        holds) are not stalls and simply count toward ``max_steps``.
    tracer:
        Trace sink for per-timestep events (:mod:`repro.obs`).  ``None``
        resolves the ambient tracer (:func:`repro.obs.current_tracer`),
        which defaults to the disabled :data:`repro.obs.NULL_TRACER` —
        the hot path then pays one hoisted boolean check per run.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` receiving the phase
        timers (``heuristic_select``, ``kernel_apply``) and run counters
        behind ``--profile``.  ``None`` resolves the ambient registry
        (:func:`repro.obs.current_metrics`), which defaults to ``None``
        — the unprofiled path skips all timing and wall-clock never
        enters it.
    kernel:
        Which step kernel holds the run's state: ``"state"`` (the
        default :class:`SimState`), ``"batch"`` (the numpy bitplane
        :class:`repro.sim.batch.BatchState`; raises a clear error when
        numpy is unavailable), ``"auto"`` (batch when numpy is
        importable, else state), or a ``Problem -> SimState`` callable.
        Kernels are interchangeable: schedules and traces are
        byte-identical whichever one runs (the batch-equivalence suite
        enforces this).  With the batch kernel, heuristics exposing
        ``propose_vector`` (Round-Robin) skip the per-arc Python
        proposal/validation loops entirely.
    """

    def __init__(
        self,
        problem: Problem,
        heuristic: HeuristicProtocol,
        rng: Optional[random.Random] = None,
        max_steps: Optional[int] = None,
        stall_limit: int = 8,
        success_predicate: Optional[
            Callable[[Sequence[TokenSet]], bool]
        ] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        kernel: Union[str, Callable[[Problem], SimState], None] = None,
    ) -> None:
        self.problem = problem
        self.heuristic = heuristic
        self.rng = rng if rng is not None else random.Random(0)
        if max_steps is None:
            max_steps = 4 * max(problem.move_bound(), 1) + 64
        self.max_steps = max_steps
        self.stall_limit = stall_limit
        self.tracer: Tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()
        # The default predicate is the paper's: w(v) ⊆ p_t(v) everywhere.
        # Extensions (e.g. threshold coding, §6) substitute their own.
        self.success_predicate = success_predicate
        # Arc capacities keyed for one-lookup proposal validation.
        self._capacities: Dict[Tuple[int, int], int] = {
            (arc.src, arc.dst): arc.capacity for arc in problem.arcs
        }
        self._state_factory = resolve_state_factory(kernel)

    def run(self) -> RunResult:
        problem = self.problem
        state = self._state_factory(problem)
        predicate = self.success_predicate
        # Hoisted once per run: the untraced/unprofiled loop below never
        # touches the tracer again and never consults a clock.
        tracer = self.tracer
        tracing = tracer.enabled
        metrics = self.metrics

        def satisfied() -> bool:
            if predicate is not None:
                return predicate(state.possession)
            return state.satisfied()

        self.heuristic.reset(problem, self.rng)
        steps: List[Timestep] = []
        stalled_for = 0
        if tracing:
            emit_run_start(
                tracer, "sim", problem, self.heuristic.name, state, self.max_steps
            )
        # Vector fast path: a batch kernel plus a heuristic that can
        # propose as arrays.  ``propose_vector`` returning None means the
        # configuration is unsupported (e.g. tokens exceed one bitplane);
        # the condition is static per run, so fall back permanently.
        vector_fn: Optional[Callable[[SimState], Any]] = (
            getattr(self.heuristic, "propose_vector", None)
            if getattr(state, "supports_vector", False)
            else None
        )
        # Any-typed alias: ``validate_vector`` only exists on the batch
        # kernel, and the fast path only runs when the probe above found
        # one.
        vector_state: Any = state

        success = satisfied()
        while not success and len(steps) < self.max_steps:
            vec = None
            if vector_fn is not None:
                if metrics is not None:
                    with metrics.timer("heuristic_select"):
                        vec = vector_fn(state)
                else:
                    vec = vector_fn(state)
                if vec is None:
                    vector_fn = None
            if vec is None:
                ctx = StepContext(
                    problem,
                    len(steps),
                    state.possession,
                    state.holder_counts,
                    self.rng,
                    state=state,
                )
                if metrics is not None:
                    with metrics.timer("heuristic_select"):
                        proposal = self.heuristic.propose(ctx)
                else:
                    proposal = self.heuristic.propose(ctx)
            version_before = state.version
            if metrics is not None:
                with metrics.timer("kernel_apply"):
                    if vec is not None:
                        timestep, arrivals = vector_state.validate_vector(
                            vec, self.heuristic.name, len(steps)
                        )
                    else:
                        timestep, arrivals = self._validated_timestep(
                            proposal, state.possession_masks, len(steps)
                        )
                    state.apply_arrivals(arrivals)
            else:
                if vec is not None:
                    timestep, arrivals = vector_state.validate_vector(
                        vec, self.heuristic.name, len(steps)
                    )
                else:
                    timestep, arrivals = self._validated_timestep(
                        proposal, state.possession_masks, len(steps)
                    )
                state.apply_arrivals(arrivals)
            progressed = state.version != version_before
            steps.append(timestep)
            if tracing:
                emit_step_event(
                    tracer, problem, state, timestep, len(steps) - 1, version_before
                )
            if metrics is not None:
                metrics.counter("steps").inc()
                metrics.gauge("deficit").set(state.total_deficit)
            success = satisfied()
            if success:
                break
            if progressed:
                stalled_for = 0
                continue
            if not state.any_useful_arc():
                if tracing:
                    tracer.emit(
                        "stall",
                        {
                            "step": len(steps) - 1,
                            "consecutive": stalled_for + 1,
                            "terminal": True,
                        },
                    )
                raise StallError(
                    f"no arc carries a useful token at step {len(steps)} while "
                    f"demand remains; the instance is unsatisfiable from this state"
                )
            if timestep:
                stalled_for = 0
            else:
                stalled_for += 1
                if tracing:
                    tracer.emit(
                        "stall",
                        {"step": len(steps) - 1, "consecutive": stalled_for},
                    )
                if stalled_for >= self.stall_limit:
                    raise StallError(
                        f"heuristic {self.heuristic.name!r} proposed nothing for "
                        f"{stalled_for} consecutive timesteps at step {len(steps)} "
                        f"with demand remaining"
                    )
        result = RunResult(
            problem=problem,
            heuristic_name=self.heuristic.name,
            schedule=Schedule(steps),
            success=success,
        )
        if tracing:
            tracer.emit(
                "run_end",
                {
                    "success": result.success,
                    "makespan": result.makespan,
                    "bandwidth": result.bandwidth,
                },
            )
        return result

    # ------------------------------------------------------------------
    def _validated_timestep(
        self,
        proposal: Proposal,
        possession_masks: Sequence[int],
        step: int,
    ) -> Tuple[Timestep, Dict[int, int]]:
        """Validate a proposal; return the timestep and the per-vertex
        arrival masks aggregated during the same walk over the sends."""
        capacities = self._capacities
        sends: Dict[Tuple[int, int], TokenSet] = {}
        arrivals: Dict[int, int] = {}
        for (src, dst), tokens in proposal.items():
            mask = tokens.mask
            if not mask:
                continue
            cap = capacities.get((src, dst))
            if cap is None:
                raise HeuristicViolation(
                    f"step {step}: heuristic {self.heuristic.name!r} sent on "
                    f"missing arc ({src}, {dst})"
                )
            if mask.bit_count() > cap:
                raise HeuristicViolation(
                    f"step {step}: heuristic {self.heuristic.name!r} sent "
                    f"{len(tokens)} tokens on arc ({src}, {dst}) of capacity "
                    f"{cap}"
                )
            if mask & ~possession_masks[src]:
                missing = TokenSet(mask & ~possession_masks[src])
                raise HeuristicViolation(
                    f"step {step}: heuristic {self.heuristic.name!r} sent tokens "
                    f"{sorted(missing)} that vertex {src} does not possess"
                )
            sends[(src, dst)] = tokens
            prev = arrivals.get(dst)
            arrivals[dst] = mask if prev is None else prev | mask
        return Timestep.from_validated(sends), arrivals


def run_heuristic(
    problem: Problem,
    heuristic: HeuristicProtocol,
    seed: int = 0,
    max_steps: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    kernel: Union[str, Callable[[Problem], SimState], None] = None,
) -> RunResult:
    """One-call convenience wrapper around :class:`Engine`."""
    return Engine(
        problem,
        heuristic,
        rng=random.Random(seed),
        max_steps=max_steps,
        tracer=tracer,
        metrics=metrics,
        kernel=kernel,
    ).run()
