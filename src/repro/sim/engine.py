"""Synchronous round-based simulator for OCD heuristics.

The engine owns the ground-truth state of one run: the possession vector
``p_i`` from Section 3.1.  Each timestep it hands the current state to a
heuristic as a read-only :class:`StepContext`, receives a proposed set of
sends, *validates the proposal against the model constraints* (capacity
and possession — a buggy heuristic raises :class:`HeuristicViolation`
instead of silently cheating), applies it, and checks for success.

The engine presents a global view of the state.  Heuristics differ in how
much of that view they are allowed to read — e.g. Round-Robin only reads
the sender's own tokens while Global reads everything — and the strict
local-knowledge (LOCD) runner in :mod:`repro.locd` enforces locality
mechanically by constructing per-vertex knowledge views instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from repro.core.metrics import ScheduleMetrics, evaluate_schedule
from repro.core.problem import Problem
from repro.core.schedule import Schedule, Timestep
from repro.core.tokenset import EMPTY_TOKENSET, TokenSet

__all__ = [
    "Proposal",
    "StepContext",
    "HeuristicProtocol",
    "HeuristicViolation",
    "StallError",
    "RunResult",
    "Engine",
    "run_heuristic",
]

Proposal = Mapping[Tuple[int, int], TokenSet]


class HeuristicViolation(RuntimeError):
    """A heuristic proposed a send that breaks the model constraints."""


class StallError(RuntimeError):
    """A heuristic stopped making progress while demand remains."""


class StepContext:
    """Read-only snapshot handed to a heuristic at each timestep."""

    __slots__ = ("problem", "step", "possession", "holder_counts", "rng")

    def __init__(
        self,
        problem: Problem,
        step: int,
        possession: Sequence[TokenSet],
        holder_counts: Sequence[int],
        rng: random.Random,
    ) -> None:
        self.problem = problem
        self.step = step
        self.possession = possession
        self.holder_counts = holder_counts
        self.rng = rng

    def useful(self, src: int, dst: int) -> TokenSet:
        """Tokens ``src`` holds that ``dst`` lacks — the flooding notion
        of a send that "can increase knowledge"."""
        return self.possession[src] - self.possession[dst]

    def outstanding(self, v: int) -> TokenSet:
        """Tokens ``v`` wants but does not yet possess."""
        return self.problem.want[v] - self.possession[v]

    def total_outstanding(self) -> int:
        return sum(
            len(self.outstanding(v)) for v in range(self.problem.num_vertices)
        )


class HeuristicProtocol(Protocol):
    """What the engine requires of a heuristic."""

    name: str

    def reset(self, problem: Problem, rng: random.Random) -> None:
        """Prepare per-run state before the first timestep."""

    def propose(self, ctx: StepContext) -> Proposal:
        """Return the sends for this timestep as ``{(src, dst): tokens}``."""


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    problem: Problem
    heuristic_name: str
    schedule: Schedule
    success: bool
    stalled: bool = False
    bound_trace: List[Tuple[int, int]] = field(default_factory=list)
    #: Total gossip facts learned over the run (LOCD runs only; 0 for the
    #: global-view engine).  See Knowledge.size_facts.
    knowledge_cost: int = 0

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    @property
    def bandwidth(self) -> int:
        return self.schedule.bandwidth

    def metrics(self) -> ScheduleMetrics:
        return evaluate_schedule(self.problem, self.schedule)


class Engine:
    """Drives one heuristic over one problem to completion.

    Parameters
    ----------
    problem:
        The instance to solve.
    heuristic:
        Any object satisfying :class:`HeuristicProtocol`.
    rng:
        Randomness source for the heuristic; pass a seeded
        ``random.Random`` for reproducible runs.
    max_steps:
        Hard cap on simulated timesteps.  Defaults to a generous multiple
        of the Theorem 1 move bound ``m(n-1)``.
    stall_limit:
        Consecutive timesteps with an *empty* proposal after which the run
        raises :class:`StallError`.  Independently of this counter, the
        engine raises immediately when no arc anywhere carries a useful
        token while demand remains — possession only ever grows, so that
        state can never change again.  No-gain steps with non-empty
        proposals (e.g. Round-Robin cycling past tokens the peer already
        holds) are not stalls and simply count toward ``max_steps``.
    """

    def __init__(
        self,
        problem: Problem,
        heuristic: HeuristicProtocol,
        rng: Optional[random.Random] = None,
        max_steps: Optional[int] = None,
        stall_limit: int = 8,
        success_predicate: Optional[
            Callable[[Sequence[TokenSet]], bool]
        ] = None,
    ) -> None:
        self.problem = problem
        self.heuristic = heuristic
        self.rng = rng if rng is not None else random.Random(0)
        if max_steps is None:
            max_steps = 4 * max(problem.move_bound(), 1) + 64
        self.max_steps = max_steps
        self.stall_limit = stall_limit
        # The default predicate is the paper's: w(v) ⊆ p_t(v) everywhere.
        # Extensions (e.g. threshold coding, §6) substitute their own.
        self.success_predicate = success_predicate

    def run(self) -> RunResult:
        problem = self.problem
        possession: List[TokenSet] = list(problem.have)
        holder_counts = [0] * problem.num_tokens
        for tokens in possession:
            for t in tokens:
                holder_counts[t] += 1

        self.heuristic.reset(problem, self.rng)
        steps: List[Timestep] = []
        stalled_for = 0

        def satisfied() -> bool:
            if self.success_predicate is not None:
                return self.success_predicate(possession)
            return all(
                problem.want[v] <= possession[v]
                for v in range(problem.num_vertices)
            )

        success = satisfied()
        while not success and len(steps) < self.max_steps:
            ctx = StepContext(
                problem, len(steps), tuple(possession), tuple(holder_counts), self.rng
            )
            proposal = self.heuristic.propose(ctx)
            timestep = self._validated_timestep(proposal, possession, len(steps))
            progressed = self._apply(timestep, possession, holder_counts)
            steps.append(timestep)
            success = satisfied()
            if success:
                break
            if progressed:
                stalled_for = 0
                continue
            if not self._any_useful_arc(possession):
                raise StallError(
                    f"no arc carries a useful token at step {len(steps)} while "
                    f"demand remains; the instance is unsatisfiable from this state"
                )
            if timestep:
                stalled_for = 0
            else:
                stalled_for += 1
                if stalled_for >= self.stall_limit:
                    raise StallError(
                        f"heuristic {self.heuristic.name!r} proposed nothing for "
                        f"{stalled_for} consecutive timesteps at step {len(steps)} "
                        f"with demand remaining"
                    )
        return RunResult(
            problem=problem,
            heuristic_name=self.heuristic.name,
            schedule=Schedule(steps),
            success=success,
        )

    # ------------------------------------------------------------------
    def _any_useful_arc(self, possession: Sequence[TokenSet]) -> bool:
        """Whether any arc could still deliver a token its head lacks."""
        return any(
            possession[arc.src] - possession[arc.dst] for arc in self.problem.arcs
        )

    def _validated_timestep(
        self,
        proposal: Proposal,
        possession: Sequence[TokenSet],
        step: int,
    ) -> Timestep:
        problem = self.problem
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for (src, dst), tokens in proposal.items():
            if not tokens:
                continue
            if not problem.has_arc(src, dst):
                raise HeuristicViolation(
                    f"step {step}: heuristic {self.heuristic.name!r} sent on "
                    f"missing arc ({src}, {dst})"
                )
            if len(tokens) > problem.capacity(src, dst):
                raise HeuristicViolation(
                    f"step {step}: heuristic {self.heuristic.name!r} sent "
                    f"{len(tokens)} tokens on arc ({src}, {dst}) of capacity "
                    f"{problem.capacity(src, dst)}"
                )
            if not tokens <= possession[src]:
                missing = tokens - possession[src]
                raise HeuristicViolation(
                    f"step {step}: heuristic {self.heuristic.name!r} sent tokens "
                    f"{sorted(missing)} that vertex {src} does not possess"
                )
            sends[(src, dst)] = tokens
        return Timestep(sends)

    def _apply(
        self,
        timestep: Timestep,
        possession: List[TokenSet],
        holder_counts: List[int],
    ) -> bool:
        """Union arriving tokens into possession; return whether any
        vertex actually gained a token."""
        progressed = False
        arrivals: Dict[int, TokenSet] = {}
        for (src, dst), tokens in timestep.sends.items():
            arrivals[dst] = arrivals.get(dst, EMPTY_TOKENSET) | tokens
        for dst, tokens in arrivals.items():
            gained = tokens - possession[dst]
            if gained:
                progressed = True
                possession[dst] = possession[dst] | gained
                for t in gained:
                    holder_counts[t] += 1
        return progressed


def run_heuristic(
    problem: Problem,
    heuristic: HeuristicProtocol,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> RunResult:
    """One-call convenience wrapper around :class:`Engine`."""
    return Engine(
        problem, heuristic, rng=random.Random(seed), max_steps=max_steps
    ).run()
