"""Frozen pre-kernel reference implementations (differential oracle).

This module preserves the simulation hot path exactly as it existed
*before* the incremental kernel (:mod:`repro.sim.state`) rewrite: the
engine loop that snapshots possession into fresh tuples every step and
rescans success/useful-arcs from scratch, the LOCD runner loop, the
dynamic-conditions loop, and the original ``propose`` bodies of all six
heuristics.  It exists for two reasons:

1. **Equivalence** — ``tests/sim/test_incremental_equivalence.py`` proves
   the incremental engines and the rewritten heuristics emit
   byte-identical schedules to these originals across random instances,
   heuristics, and seeds.  The rewrite is a representation change, not a
   behavior change, and this module is the executable witness.
2. **Perf baselining** — ``benchmarks/engine_perf.py`` measures the
   incremental path's speedup against this frozen baseline and records
   both in ``BENCH_engine.json``; CI fails when the speedup regresses.

Do not optimise, refactor, or "clean up" this module: its value is that
it does not change.  It is intentionally not exported from
``repro.sim``'s public surface.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Set, Tuple

from repro.core.problem import Problem
from repro.core.schedule import Schedule, Timestep
from repro.core.tokenset import EMPTY_TOKENSET, TokenSet
from repro.sim.engine import (
    HeuristicProtocol,
    HeuristicViolation,
    RunResult,
    StallError,
    StepContext,
)

__all__ = [
    "REFERENCE_HEURISTIC_FACTORIES",
    "ReferenceEngine",
    "make_reference_heuristic",
    "reference_run_heuristic",
    "reference_run_local",
    "reference_run_dynamic",
]


# ======================================================================
# The pre-kernel engine loop (tuple snapshots, full rescans)
# ======================================================================
class ReferenceEngine:
    """The pre-incremental :class:`repro.sim.Engine`, verbatim."""

    def __init__(
        self,
        problem: Problem,
        heuristic: HeuristicProtocol,
        rng: Optional[random.Random] = None,
        max_steps: Optional[int] = None,
        stall_limit: int = 8,
        success_predicate: Optional[
            Callable[[Sequence[TokenSet]], bool]
        ] = None,
    ) -> None:
        self.problem = problem
        self.heuristic = heuristic
        self.rng = rng if rng is not None else random.Random(0)
        if max_steps is None:
            max_steps = 4 * max(problem.move_bound(), 1) + 64
        self.max_steps = max_steps
        self.stall_limit = stall_limit
        self.success_predicate = success_predicate

    def run(self) -> RunResult:
        problem = self.problem
        possession: List[TokenSet] = list(problem.have)
        holder_counts = [0] * problem.num_tokens
        for tokens in possession:
            for t in tokens:
                holder_counts[t] += 1

        self.heuristic.reset(problem, self.rng)
        steps: List[Timestep] = []
        stalled_for = 0

        def satisfied() -> bool:
            if self.success_predicate is not None:
                return self.success_predicate(possession)
            return all(
                problem.want[v] <= possession[v]
                for v in range(problem.num_vertices)
            )

        success = satisfied()
        while not success and len(steps) < self.max_steps:
            ctx = StepContext(
                problem, len(steps), tuple(possession), tuple(holder_counts), self.rng
            )
            proposal = self.heuristic.propose(ctx)
            timestep = self._validated_timestep(proposal, possession, len(steps))
            progressed = self._apply(timestep, possession, holder_counts)
            steps.append(timestep)
            success = satisfied()
            if success:
                break
            if progressed:
                stalled_for = 0
                continue
            if not self._any_useful_arc(possession):
                raise StallError(
                    f"no arc carries a useful token at step {len(steps)} while "
                    f"demand remains; the instance is unsatisfiable from this state"
                )
            if timestep:
                stalled_for = 0
            else:
                stalled_for += 1
                if stalled_for >= self.stall_limit:
                    raise StallError(
                        f"heuristic {self.heuristic.name!r} proposed nothing for "
                        f"{stalled_for} consecutive timesteps at step {len(steps)} "
                        f"with demand remaining"
                    )
        return RunResult(
            problem=problem,
            heuristic_name=self.heuristic.name,
            schedule=Schedule(steps),
            success=success,
        )

    def _any_useful_arc(self, possession: Sequence[TokenSet]) -> bool:
        return any(
            possession[arc.src] - possession[arc.dst] for arc in self.problem.arcs
        )

    def _validated_timestep(
        self,
        proposal: Dict[Tuple[int, int], TokenSet] | "object",
        possession: Sequence[TokenSet],
        step: int,
    ) -> Timestep:
        problem = self.problem
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for (src, dst), tokens in proposal.items():  # type: ignore[union-attr]
            if not tokens:
                continue
            if not problem.has_arc(src, dst):
                raise HeuristicViolation(
                    f"step {step}: heuristic {self.heuristic.name!r} sent on "
                    f"missing arc ({src}, {dst})"
                )
            if len(tokens) > problem.capacity(src, dst):
                raise HeuristicViolation(
                    f"step {step}: heuristic {self.heuristic.name!r} sent "
                    f"{len(tokens)} tokens on arc ({src}, {dst}) of capacity "
                    f"{problem.capacity(src, dst)}"
                )
            if not tokens <= possession[src]:
                missing = tokens - possession[src]
                raise HeuristicViolation(
                    f"step {step}: heuristic {self.heuristic.name!r} sent tokens "
                    f"{sorted(missing)} that vertex {src} does not possess"
                )
            sends[(src, dst)] = tokens
        return Timestep(sends)

    def _apply(
        self,
        timestep: Timestep,
        possession: List[TokenSet],
        holder_counts: List[int],
    ) -> bool:
        progressed = False
        arrivals: Dict[int, TokenSet] = {}
        for (src, dst), tokens in timestep.sends.items():
            arrivals[dst] = arrivals.get(dst, EMPTY_TOKENSET) | tokens
        for dst, tokens in arrivals.items():
            gained = tokens - possession[dst]
            if gained:
                progressed = True
                possession[dst] = possession[dst] | gained
                for t in gained:
                    holder_counts[t] += 1
        return progressed


def reference_run_heuristic(
    problem: Problem,
    heuristic: HeuristicProtocol,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> RunResult:
    """The pre-kernel ``run_heuristic``, verbatim."""
    return ReferenceEngine(
        problem, heuristic, rng=random.Random(seed), max_steps=max_steps
    ).run()


# ======================================================================
# The pre-rewrite heuristic propose() bodies
# ======================================================================
class _ReferenceHeuristic:
    """Minimal stand-in for :class:`repro.heuristics.Heuristic` so the
    frozen bodies below stay self-contained (no import of the live,
    rewritten heuristics package)."""

    name: str = "reference"

    def __init__(self) -> None:
        self._problem: Optional[Problem] = None
        self._rng: random.Random = random.Random(0)

    @property
    def problem(self) -> Problem:
        if self._problem is None:
            raise RuntimeError(f"heuristic {self.name!r} used before reset()")
        return self._problem

    @property
    def rng(self) -> random.Random:
        return self._rng

    def reset(self, problem: Problem, rng: random.Random) -> None:
        self._problem = problem
        self._rng = rng
        self.on_reset()

    def on_reset(self) -> None:
        """Hook for per-run initialization."""

    def propose(self, ctx: StepContext) -> Dict[Tuple[int, int], TokenSet]:
        raise NotImplementedError


def _sample_tokens(tokens: TokenSet, count: int, rng: random.Random) -> TokenSet:
    members = list(tokens)
    if len(members) <= count:
        return tokens
    return TokenSet.from_iterable(rng.sample(members, count))


class ReferenceRoundRobin(_ReferenceHeuristic):
    """Pre-rewrite Round-Robin: per-token scan of the circular queue."""

    name = "round_robin"

    def on_reset(self) -> None:
        self._cursor: Dict[Tuple[int, int], int] = {
            (arc.src, arc.dst): 0 for arc in self.problem.arcs
        }

    def propose(self, ctx: StepContext) -> Dict[Tuple[int, int], TokenSet]:
        problem = ctx.problem
        m = problem.num_tokens
        sends: Dict[Tuple[int, int], TokenSet] = {}
        if m == 0:
            return sends
        for arc in problem.arcs:
            owned = ctx.possession[arc.src]
            if not owned:
                continue
            key = (arc.src, arc.dst)
            cursor = self._cursor[key]
            chosen = 0
            picked = 0
            for offset in range(m):
                token = (cursor + offset) % m
                if token in owned:
                    chosen |= 1 << token
                    picked += 1
                    if picked == arc.capacity:
                        cursor = (token + 1) % m
                        break
            else:
                cursor = (cursor + m) % m
            self._cursor[key] = cursor
            if chosen:
                sends[key] = TokenSet(chosen)
        return sends


class ReferenceRandom(_ReferenceHeuristic):
    """Pre-rewrite Random: uniform useful subsets per arc."""

    name = "random"

    def propose(self, ctx: StepContext) -> Dict[Tuple[int, int], TokenSet]:
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for arc in ctx.problem.arcs:
            useful = ctx.useful(arc.src, arc.dst)
            if not useful:
                continue
            sends[(arc.src, arc.dst)] = _sample_tokens(useful, arc.capacity, ctx.rng)
        return sends


class ReferenceLocalRarest(_ReferenceHeuristic):
    """Pre-rewrite Local: full possession diffs and per-token arc scans."""

    name = "local"

    def on_reset(self) -> None:
        problem = self.problem
        self._need_counts: List[int] = [0] * problem.num_tokens
        for v in range(problem.num_vertices):
            for t in problem.want[v] - problem.have[v]:
                self._need_counts[t] += 1
        self._prev_possession: List[TokenSet] = list(problem.have)

    def _refresh_need_counts(self, ctx: StepContext) -> None:
        for v in range(ctx.problem.num_vertices):
            gained = ctx.possession[v] - self._prev_possession[v]
            if gained:
                for t in gained & ctx.problem.want[v]:
                    self._need_counts[t] -= 1
                self._prev_possession[v] = ctx.possession[v]

    def propose(self, ctx: StepContext) -> Dict[Tuple[int, int], TokenSet]:
        self._refresh_need_counts(ctx)
        problem = ctx.problem
        rng = ctx.rng
        holder_counts = ctx.holder_counts
        need_counts = self._need_counts
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for v in range(problem.num_vertices):
            in_arcs = problem.in_arcs(v)
            if not in_arcs:
                continue
            available = EMPTY_TOKENSET
            for arc in in_arcs:
                available = available | ctx.possession[arc.src]
            lacking = available - ctx.possession[v]
            if not lacking:
                continue
            requests = list(lacking)
            rng.shuffle(requests)
            requests.sort(key=lambda t: (holder_counts[t], -need_counts[t]))
            budget = {(arc.src, arc.dst): arc.capacity for arc in in_arcs}
            suppliers = list(in_arcs)
            for token in requests:
                candidates = [
                    arc
                    for arc in suppliers
                    if budget[(arc.src, arc.dst)] > 0
                    and token in ctx.possession[arc.src]
                ]
                if not candidates:
                    continue
                best = max(
                    candidates,
                    key=lambda arc: (budget[(arc.src, arc.dst)], rng.random()),
                )
                key = (best.src, best.dst)
                budget[key] -= 1
                sends[key] = sends.get(key, EMPTY_TOKENSET).add(token)
        return sends


class ReferenceSequential(_ReferenceHeuristic):
    """Pre-rewrite Sequential: in-order pulls with per-token arc scans."""

    name = "sequential"

    def propose(self, ctx: StepContext) -> Dict[Tuple[int, int], TokenSet]:
        problem = ctx.problem
        rng = ctx.rng
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for v in range(problem.num_vertices):
            in_arcs = problem.in_arcs(v)
            if not in_arcs:
                continue
            available = EMPTY_TOKENSET
            for arc in in_arcs:
                available = available | ctx.possession[arc.src]
            lacking = available - ctx.possession[v]
            if not lacking:
                continue
            budget = {(arc.src, arc.dst): arc.capacity for arc in in_arcs}
            for token in lacking:
                candidates = [
                    arc
                    for arc in in_arcs
                    if budget[(arc.src, arc.dst)] > 0
                    and token in ctx.possession[arc.src]
                ]
                if not candidates:
                    continue
                best = max(
                    candidates,
                    key=lambda arc: (budget[(arc.src, arc.dst)], rng.random()),
                )
                key = (best.src, best.dst)
                budget[key] -= 1
                sends[key] = sends.get(key, EMPTY_TOKENSET).add(token)
        return sends


class ReferenceBandwidth(_ReferenceHeuristic):
    """Pre-rewrite Bandwidth: per-token vertex scans and TokenSet sets."""

    name = "bandwidth"

    def _closest_one_hop_labels(
        self, ctx: StepContext, one_hop: List[int]
    ) -> List[int]:
        problem = ctx.problem
        label = [-1] * problem.num_vertices
        queue: deque[int] = deque()
        for u in one_hop:
            label[u] = u
            queue.append(u)
        while queue:
            v = queue.popleft()
            for arc in problem.out_arcs(v):
                if label[arc.dst] == -1:
                    label[arc.dst] = label[v]
                    queue.append(arc.dst)
        return label

    def propose(self, ctx: StepContext) -> Dict[Tuple[int, int], TokenSet]:
        problem = ctx.problem
        pulls: Dict[int, List[int]] = {}

        def add_pull(v: int, token: int) -> None:
            pulls.setdefault(v, []).append(token)

        one_hop_supply: List[TokenSet] = []
        for v in range(problem.num_vertices):
            supply = EMPTY_TOKENSET
            for arc in problem.in_arcs(v):
                supply = supply | ctx.possession[arc.src]
            one_hop_supply.append(supply)

        for token in range(problem.num_tokens):
            needers = [
                v
                for v in range(problem.num_vertices)
                if token in problem.want[v] and token not in ctx.possession[v]
            ]
            if not needers:
                continue
            far_needers = []
            for v in needers:
                if token in one_hop_supply[v]:
                    add_pull(v, token)
                else:
                    far_needers.append(v)
            if not far_needers:
                continue
            one_hop = [
                u
                for u in range(problem.num_vertices)
                if token not in ctx.possession[u] and token in one_hop_supply[u]
            ]
            if not one_hop:
                continue
            label = self._closest_one_hop_labels(ctx, one_hop)
            relays: Set[int] = set()
            for x in far_needers:
                if label[x] != -1:
                    relays.add(label[x])
            for u in sorted(relays):
                add_pull(u, token)

        sends: Dict[Tuple[int, int], TokenSet] = {}
        for v, pulled in pulls.items():
            ctx.rng.shuffle(pulled)
            pulled.sort(key=lambda t: ctx.holder_counts[t])
            in_arcs = problem.in_arcs(v)
            budget = {(arc.src, arc.dst): arc.capacity for arc in in_arcs}
            for token in pulled:
                candidates = [
                    arc
                    for arc in in_arcs
                    if budget[(arc.src, arc.dst)] > 0
                    and token in ctx.possession[arc.src]
                ]
                if not candidates:
                    continue
                best = max(
                    candidates,
                    key=lambda arc: (budget[(arc.src, arc.dst)], ctx.rng.random()),
                )
                key = (best.src, best.dst)
                budget[key] -= 1
                sends[key] = sends.get(key, EMPTY_TOKENSET).add(token)
        return sends


class ReferenceGlobalGreedy(_ReferenceHeuristic):
    """Pre-rewrite Global: TokenSet min-scans and per-visit arc rebuilds."""

    name = "global"

    def propose(self, ctx: StepContext) -> Dict[Tuple[int, int], TokenSet]:
        problem = ctx.problem
        rng = ctx.rng
        tentative_counts = list(ctx.holder_counts)
        sends: Dict[Tuple[int, int], TokenSet] = {}
        planned: List[TokenSet] = [EMPTY_TOKENSET] * problem.num_vertices
        budget: Dict[Tuple[int, int], int] = {
            (arc.src, arc.dst): arc.capacity for arc in problem.arcs
        }

        active = [v for v in range(problem.num_vertices) if problem.in_arcs(v)]
        rng.shuffle(active)
        while active:
            still_active = []
            for v in active:
                supply = EMPTY_TOKENSET
                usable_arcs = []
                for arc in problem.in_arcs(v):
                    if budget[(arc.src, arc.dst)] > 0:
                        supply = supply | ctx.possession[arc.src]
                        usable_arcs.append(arc)
                candidates = supply - ctx.possession[v] - planned[v]
                if not candidates:
                    continue
                token = min(
                    candidates, key=lambda t: (tentative_counts[t], rng.random())
                )
                suppliers = [
                    arc
                    for arc in usable_arcs
                    if token in ctx.possession[arc.src]
                ]
                best = max(
                    suppliers,
                    key=lambda arc: (budget[(arc.src, arc.dst)], rng.random()),
                )
                key = (best.src, best.dst)
                budget[key] -= 1
                planned[v] = planned[v].add(token)
                tentative_counts[token] += 1
                sends[key] = sends.get(key, EMPTY_TOKENSET).add(token)
                still_active.append(v)
            active = still_active
        return sends


REFERENCE_HEURISTIC_FACTORIES: Dict[str, Callable[[], HeuristicProtocol]] = {
    "round_robin": ReferenceRoundRobin,
    "random": ReferenceRandom,
    "local": ReferenceLocalRarest,
    "bandwidth": ReferenceBandwidth,
    "global": ReferenceGlobalGreedy,
    "sequential": ReferenceSequential,
}


def make_reference_heuristic(name: str) -> HeuristicProtocol:
    """Instantiate a frozen pre-rewrite heuristic by its paper name."""
    try:
        factory = REFERENCE_HEURISTIC_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown reference heuristic {name!r}; choose from "
            f"{sorted(REFERENCE_HEURISTIC_FACTORIES)}"
        ) from None
    return factory()


# ======================================================================
# The pre-kernel LOCD runner loop
# ======================================================================
class _LocalAlgorithmProtocol(Protocol):
    name: str

    def reset(self, num_vertices: int, rng: random.Random) -> None: ...

    def decide(
        self, step: int, knowledge: "object", rng: random.Random
    ) -> Dict[Tuple[int, int], TokenSet]: ...


def reference_run_local(
    problem: Problem,
    algorithm: _LocalAlgorithmProtocol,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> RunResult:
    """The pre-kernel :class:`repro.locd.LocalEngine` loop, verbatim."""
    from repro.locd.knowledge import Knowledge, initial_knowledge

    rng = random.Random(seed)
    if max_steps is None:
        max_steps = 4 * max(problem.move_bound(), 1) + 4 * problem.num_vertices + 64
    possession: List[TokenSet] = list(problem.have)
    knowledge: List[Knowledge] = [
        initial_knowledge(problem, v) for v in range(problem.num_vertices)
    ]
    algorithm.reset(problem.num_vertices, rng)
    steps: List[Timestep] = []
    knowledge_cost = 0

    def satisfied() -> bool:
        return all(
            problem.want[v] <= possession[v]
            for v in range(problem.num_vertices)
        )

    success = satisfied()
    while not success and len(steps) < max_steps:
        step_index = len(steps)
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for v in range(problem.num_vertices):
            proposal = algorithm.decide(step_index, knowledge[v], rng)
            for (src, dst), tokens in proposal.items():
                if not tokens:
                    continue
                if src != v:
                    raise HeuristicViolation(
                        f"step {step_index}: vertex {v} proposed a send "
                        f"out of vertex {src}"
                    )
                if not problem.has_arc(src, dst):
                    raise HeuristicViolation(
                        f"step {step_index}: no arc ({src}, {dst})"
                    )
                if len(tokens) > problem.capacity(src, dst):
                    raise HeuristicViolation(
                        f"step {step_index}: arc ({src}, {dst}) over capacity"
                    )
                if not tokens <= possession[src]:
                    raise HeuristicViolation(
                        f"step {step_index}: vertex {src} sent unpossessed "
                        f"tokens {sorted(tokens - possession[src])}"
                    )
                sends[(src, dst)] = tokens
        timestep = Timestep(sends)
        steps.append(timestep)

        arrivals: Dict[int, TokenSet] = {}
        for (src, dst), tokens in timestep.sends.items():
            arrivals[dst] = arrivals.get(dst, EMPTY_TOKENSET) | tokens
        for dst, tokens in arrivals.items():
            possession[dst] = possession[dst] | tokens

        snapshots = [k.snapshot() for k in knowledge]
        for v in range(problem.num_vertices):
            before = knowledge[v].size_facts()
            for u in problem.neighbors(v):
                knowledge[v].merge_from(snapshots[u])
            knowledge_cost += knowledge[v].size_facts() - before
            if v in arrivals:
                knowledge[v].record_own_possession(arrivals[v])

        success = satisfied()
    return RunResult(
        problem=problem,
        heuristic_name=algorithm.name,
        schedule=Schedule(steps),
        success=success,
        knowledge_cost=knowledge_cost,
    )


# ======================================================================
# The pre-kernel dynamic-conditions loop
# ======================================================================
class _CapacityScheduleProtocol(Protocol):
    problem: Problem
    name: str

    def problem_at(self, step: int) -> Problem: ...


def reference_run_dynamic(
    conditions: _CapacityScheduleProtocol,
    heuristic: HeuristicProtocol,
    seed: int = 0,
    max_steps: Optional[int] = None,
    success_predicate: Optional[Callable[[Sequence[TokenSet]], bool]] = None,
) -> RunResult:
    """The pre-kernel :class:`DynamicEngine` loop, verbatim."""
    rng = random.Random(seed)
    base = conditions.problem
    if max_steps is None:
        max_steps = 8 * max(base.move_bound(), 1) + 64
    possession: List[TokenSet] = list(base.have)
    holder_counts = [0] * base.num_tokens
    for tokens in possession:
        for t in tokens:
            holder_counts[t] += 1
    steps: List[Timestep] = []

    def satisfied() -> bool:
        if success_predicate is not None:
            return success_predicate(possession)
        return all(
            base.want[v] <= possession[v] for v in range(base.num_vertices)
        )

    success = satisfied()
    reset_for: Optional[Problem] = None
    while not success and len(steps) < max_steps:
        step_index = len(steps)
        current = conditions.problem_at(step_index)
        if reset_for is None or set(current.arcs) != set(reset_for.arcs):
            heuristic.reset(current, rng)
            reset_for = current
        ctx = StepContext(
            current, step_index, tuple(possession), tuple(holder_counts), rng
        )
        proposal = heuristic.propose(ctx)
        sends: Dict[Tuple[int, int], TokenSet] = {}
        for (src, dst), tokens in proposal.items():
            if not tokens:
                continue
            if not current.has_arc(src, dst):
                raise HeuristicViolation(
                    f"step {step_index}: arc ({src}, {dst}) is down this turn"
                )
            if len(tokens) > current.capacity(src, dst):
                raise HeuristicViolation(
                    f"step {step_index}: arc ({src}, {dst}) over its "
                    f"current capacity {current.capacity(src, dst)}"
                )
            if not tokens <= possession[src]:
                raise HeuristicViolation(
                    f"step {step_index}: vertex {src} sent unpossessed tokens"
                )
            sends[(src, dst)] = tokens
        timestep = Timestep(sends)
        steps.append(timestep)
        arrivals: Dict[int, TokenSet] = {}
        for (src, dst), tokens in timestep.sends.items():
            arrivals[dst] = arrivals.get(dst, EMPTY_TOKENSET) | tokens
        for dst, tokens in arrivals.items():
            gained = tokens - possession[dst]
            if gained:
                possession[dst] = possession[dst] | gained
                for t in gained:
                    holder_counts[t] += 1
        success = satisfied()
    return RunResult(
        problem=base,
        heuristic_name=f"{heuristic.name}@{conditions.name}",
        schedule=Schedule(steps),
        success=success,
    )
