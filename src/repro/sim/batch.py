"""The vectorized batch step kernel: :class:`BatchState`.

:class:`BatchState` is a drop-in subclass of :class:`repro.sim.SimState`
that additionally mirrors possession into a dense ``(vertices, planes)``
uint64 bitplane matrix (layout: :mod:`repro.sim.bitplanes`).  Every list
the base kernel maintains — ``possession``, ``possession_masks``,
``holder_counts``, ``deficit``, the gain journal — is inherited
unchanged, so heuristics and engines that read those see *exactly* the
state a plain ``SimState`` would give them, bit for bit.  On top of
that, the matrix enables batched array ops where per-vertex Python
loops used to run:

* :meth:`in_supply_masks` — the per-vertex union of in-neighbor
  possession (the flooding heuristics' supply scan) as one gather plus
  one ``bitwise_or.reduceat`` over dst-grouped arcs;
* :meth:`any_useful_arc` — the stall test as a single vectorized
  comparison over all arcs;
* :meth:`validate_vector` — batched capacity/possession validation of a
  :class:`VectorProposal` (the engine's fast path for heuristics that
  can propose as arrays — all four paper heuristics).

The matrix is synced *lazily* from the inherited gain journal: a run
that never touches a batched read (e.g. the LOCD runner) pays nothing
beyond the initial pack.  Since the journal already carries every
possession change, replaying it is exact — the matrix row of a vertex
is always the bit image of ``possession_masks[v]`` at sync time.

Equivalence contract: engines built on :class:`BatchState` produce
schedules and JSONL traces byte-identical to :class:`SimState` and the
frozen oracle in :mod:`repro.sim.reference` on every supported
configuration (``tests/sim/test_batch_equivalence.py``).  The batched
reads return the same *values* the scalar loops compute, so heuristics
consume their RNG streams identically; RNG-bound vector proposal paths
call the engine RNG directly, in the exact order their scalar loops
do, so ``rng.getstate()`` agrees after every step.

Kernel selection is centralized in :func:`resolve_kernel`: ``"state"``
(the default everywhere), ``"batch"`` (raises
:class:`~repro.sim.bitplanes.MissingNumpyError` without numpy),
``"auto"`` (batch when numpy is importable, else state), or a callable
``Problem -> SimState`` for tests that inject instrumented kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.problem import Problem
from repro.core.schedule import Timestep
from repro.core.tokenset import TokenSet
from repro.sim.bitplanes import (
    HAVE_NUMPY,
    MissingNumpyError,
    masks_to_matrix,
    matrix_to_masks,
    plane_count,
    planes_to_mask,
    popcount_cols,
    require_numpy,
)
from repro.sim.engine import HeuristicViolation
from repro.sim.state import SimState

__all__ = [
    "BatchState",
    "VectorProposal",
    "KernelFactory",
    "KernelChoice",
    "KERNEL_NAMES",
    "HAVE_NUMPY",
    "MissingNumpyError",
    "resolve_kernel",
]

_PLANE_MASK = (1 << 64) - 1

#: The engine-facing kernel names, in CLI/docs order.
KERNEL_NAMES = ("state", "batch", "auto")

KernelFactory = Callable[[Problem], SimState]
KernelChoice = Union[str, KernelFactory, None]


@dataclass(frozen=True)
class VectorProposal:
    """One timestep's sends as parallel arrays instead of a dict.

    ``arc_indices`` indexes into ``problem.arcs`` in the **order the
    scalar heuristic inserts sends into its proposal dict** (ascending
    arc index for Round-Robin and Random; per-vertex supplier order for
    the request-subdividing heuristics) — the lazy timestep and the
    arrival fold preserve it, so dict iteration order downstream matches
    the scalar path exactly.  ``masks`` holds the send bitmasks, either
    a ``(K,)`` uint64 vector for single-plane universes or a
    ``(K, planes)`` uint64 matrix (:mod:`repro.sim.bitplanes` layout)
    for universes beyond 64 tokens.  Rows with empty masks must be
    omitted, mirroring the dict path's validation dropping empty sends.
    """

    arc_indices: Any  # (K,) integer ndarray, scalar dict-insertion order
    masks: Any  # (K,) uint64 or (K, planes) uint64 ndarray, rows nonzero


class _LazyVectorTimestep(Timestep):
    """A validated :class:`Timestep` that materializes its dict lazily.

    The vector path validates sends wholesale as arrays; building the
    ``{arc: TokenSet}`` dict eagerly would put a Python loop over every
    send back into the hot path just to store the schedule.  Instead the
    index/mask arrays are kept and the dict is built on first ``sends``
    access (trace emission, pruning, equality — all off the hot path),
    in proposal order, exactly as the eager validator inserts it.
    ``num_moves`` is precomputed from a popcount so schedule bandwidth
    never forces materialization, and :meth:`iter_sends_masks` streams
    the sends in bounded chunks so schedule comparison at the 10^5-swarm
    scale never holds two materialized dicts at once.

    ``masks`` follows the :class:`VectorProposal` shape contract: a
    ``(K,)`` uint64 vector (single plane) or a ``(K, planes)`` matrix.
    """

    __slots__ = ("_keys", "_idx", "_masks", "_moves")

    def __init__(
        self, keys: List[Tuple[int, int]], idx: Any, masks: Any, moves: int
    ) -> None:
        # Deliberately skip Timestep.__init__: the base class's
        # ``sends`` slot stays *unset*, so the first attribute access
        # falls through to ``__getattr__`` below, which materializes
        # the dict into the slot.  Later accesses hit the slot direct.
        self._keys = keys
        self._idx = idx
        self._masks = masks
        self._moves = moves

    def _mask_ints(self, lo: int, hi: int) -> List[int]:
        """Rows ``lo:hi`` of the mask array as Python int bitmasks."""
        masks = self._masks
        if masks.ndim == 1:
            out: List[int] = masks[lo:hi].tolist()
            return out
        return matrix_to_masks(masks[lo:hi])

    def __getattr__(self, name: str) -> Any:
        if name == "sends":
            keys = self._keys
            sends = {
                keys[i]: TokenSet(mask)
                for i, mask in zip(self._idx.tolist(), self._mask_ints(0, len(self._idx)))
            }
            self.sends = sends
            return sends
        raise AttributeError(name)

    def iter_sends_masks(
        self, chunk: int = 1 << 16
    ) -> Iterator[Tuple[Tuple[int, int], int]]:
        """Yield ``((src, dst), mask)`` sends in proposal order, chunked.

        Unlike a ``sends`` access this never caches the dict: each chunk
        of rows is converted, yielded, and dropped, so comparing two
        n=10^5 schedules streams in O(chunk) extra memory per side.  If
        the dict was already materialized it is reused directly.
        """
        sends_slot = Timestep.__dict__["sends"]
        try:
            sends = sends_slot.__get__(self, type(self))
        except AttributeError:
            pass
        else:
            for key, tokens in sends.items():
                yield key, tokens.mask
            return
        keys = self._keys
        idx = self._idx
        for lo in range(0, len(idx), chunk):
            hi = lo + chunk
            ids: List[int] = idx[lo:hi].tolist()
            for i, mask in zip(ids, self._mask_ints(lo, hi)):
                yield keys[i], mask

    def num_moves(self) -> int:
        return self._moves


class BatchState(SimState):
    """A :class:`SimState` with a lazily-synced dense bitplane mirror.

    Construction requires numpy (:func:`resolve_kernel` never hands this
    class out otherwise).  All inherited state is maintained by the base
    class exactly as before; the subclass only *adds* reads.
    """

    __slots__ = (
        "np",
        "planes",
        "_matrix",
        "_matrix_version",
        "_arc_src",
        "_arc_dst",
        "_arc_cap",
        "_arc_keys",
        "_in_gather",
        "_in_starts",
        "_in_dsts",
        "_in_dsts_arr",
        "_supply_cache",
        "_supply_version",
        "_supply_mat_cache",
        "_supply_mat_version",
        "_useful_cache",
        "_useful_version",
        "_want_mat",
        "_arrival_fold",
    )

    #: Engines probe this (via getattr, to avoid importing numpy-adjacent
    #: modules on the scalar path) before offering heuristics the vector
    #: proposal fast path.
    supports_vector = True

    def __init__(
        self, problem: Problem, possession: Optional[Iterable[TokenSet]] = None
    ) -> None:
        super().__init__(problem, possession)
        self.np = require_numpy()
        self.planes = plane_count(problem.num_tokens)
        self._matrix = masks_to_matrix(self.possession_masks, problem.num_tokens)
        self._matrix_version = self.version
        # Arc index arrays and supply groups are built on first use so
        # drivers that never take a batched read (LOCD) skip them.
        self._arc_src: Any = None
        self._arc_dst: Any = None
        self._arc_cap: Any = None
        self._arc_keys: Optional[List[Tuple[int, int]]] = None
        self._in_gather: Any = None
        self._in_starts: Any = None
        self._in_dsts: Optional[List[int]] = None
        self._in_dsts_arr: Any = None
        self._supply_cache: Optional[List[int]] = None
        self._supply_version = -1
        self._supply_mat_cache: Any = None
        self._supply_mat_version = -1
        self._useful_cache = False
        self._useful_version = -1
        self._want_mat: Any = None
        # The last validate_vector arrival fold, kept as arrays so
        # apply_arrivals can skip the dict/bigint round trip when the
        # engine hands the same dict straight back.
        self._arrival_fold: Optional[Tuple[Dict[int, int], Any, Any]] = None

    # ------------------------------------------------------------------
    # Matrix mirror
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> Any:
        """The ``(V, P)`` possession matrix, synced to the current state.

        Sync replays the journal entries applied since the last read and
        rewrites just those vertices' rows from ``possession_masks`` —
        the masks are current, and possession only grows, so rewriting a
        row repeatedly is idempotent.  O(gains since last read).
        """
        journal = self._journal
        cursor = self._matrix_version
        if cursor != len(journal):
            matrix = self._matrix
            masks = self.possession_masks
            if self.planes == 1:
                for dst, _gained in journal[cursor:]:
                    matrix[dst, 0] = masks[dst]
            else:
                for dst, _gained in journal[cursor:]:
                    mm = masks[dst]
                    for p in range(self.planes):
                        matrix[dst, p] = mm & _PLANE_MASK
                        mm >>= 64
            self._matrix_version = len(journal)
        return self._matrix

    def _ensure_arc_arrays(self) -> None:
        if self._arc_keys is not None:
            return
        np = self.np
        arcs = self.problem.arcs
        n_arcs = len(arcs)
        self._arc_src = np.fromiter(
            (a.src for a in arcs), dtype=np.int64, count=n_arcs
        )
        self._arc_dst = np.fromiter(
            (a.dst for a in arcs), dtype=np.int64, count=n_arcs
        )
        self._arc_cap = np.fromiter(
            (a.capacity for a in arcs), dtype=np.int64, count=n_arcs
        )
        self._arc_keys = [(a.src, a.dst) for a in arcs]

    @property
    def arc_src(self) -> Any:
        """Per-arc source vertex ids as an int64 array (arc order)."""
        self._ensure_arc_arrays()
        return self._arc_src

    @property
    def arc_dst(self) -> Any:
        """Per-arc destination vertex ids as an int64 array (arc order)."""
        self._ensure_arc_arrays()
        return self._arc_dst

    @property
    def arc_cap(self) -> Any:
        """Per-arc capacities as an int64 array (arc order)."""
        self._ensure_arc_arrays()
        return self._arc_cap

    # ------------------------------------------------------------------
    # Batched reads
    # ------------------------------------------------------------------
    def _ensure_in_groups(self) -> None:
        """Build the dst-grouped in-arc gather tables on first use."""
        if self._in_dsts is not None:
            return
        np = self.np
        self._ensure_arc_arrays()
        if len(self._arc_keys or []) == 0:
            self._in_dsts = []
            return
        order = np.argsort(self._arc_dst, kind="stable")
        dsts, starts = np.unique(self._arc_dst[order], return_index=True)
        self._in_gather = self._arc_src[order]
        self._in_starts = starts
        self._in_dsts = [int(d) for d in dsts]
        self._in_dsts_arr = dsts

    def in_supply_matrix(self) -> Any:
        """Per-vertex union of in-neighbor possession as a ``(V, P)`` matrix.

        Row ``v`` is the plane image of
        ``OR(possession_masks[src] for arcs src -> v)`` — the supply
        scan every request-subdividing heuristic runs per vertex per
        step — computed for all vertices at once with one gather and one
        grouped-OR reduction.  Cached per state version.  Callers must
        not mutate the returned array.
        """
        version = self.version
        cached = self._supply_mat_cache
        if cached is not None and self._supply_mat_version == version:
            return cached
        np = self.np
        matrix = self.matrix
        out = np.zeros_like(matrix)
        self._ensure_in_groups()
        if self._in_dsts:
            unions = np.bitwise_or.reduceat(
                matrix[self._in_gather], self._in_starts, axis=0
            )
            out[self._in_dsts_arr] = unions
        self._supply_mat_cache = out
        self._supply_mat_version = version
        return out

    def in_supply_masks(self) -> List[int]:
        """The :meth:`in_supply_matrix` rows as per-vertex int bitmasks.

        The value the scalar heuristics' per-vertex supply union loop
        computes, for all vertices at once.  Cached per state version,
        so repeated reads within a quiescent state are free.
        """
        version = self.version
        cached = self._supply_cache
        if cached is not None and self._supply_version == version:
            return cached
        out = matrix_to_masks(self.in_supply_matrix())
        self._supply_cache = out
        self._supply_version = version
        return out

    def token_demand(self) -> List[int]:
        """Per-token demand, materialised from the matrix in one pass.

        Same integers as the base kernel's O(V * m) per-bit scan —
        column popcounts of ``want & ~possession`` are exact — after
        which the inherited gain fold maintains the list in place.
        """
        if self._token_deficit is None:
            want = masks_to_matrix(self._want_masks, self.problem.num_tokens)
            self._token_deficit = popcount_cols(want & ~self.matrix)[
                : self.problem.num_tokens
            ]
        return self._token_deficit

    #: Below this many destination gains, the base class's per-bit fold
    #: beats the array round trip of the vectorized arrival fold.
    _VECTOR_ARRIVALS_MIN = 16

    def _want_matrix(self) -> Any:
        """The per-vertex want masks as a cached ``(V, P)`` matrix."""
        if self._want_mat is None:
            self._want_mat = masks_to_matrix(
                self._want_masks, self.problem.num_tokens
            )
        return self._want_mat

    def _apply_fold(self, dsts_arr: Any, folded: Any) -> None:
        """Apply a validate_vector arrival fold straight from its arrays.

        Row ``k`` of ``folded`` is the arrival mask of ``dsts_arr[k]``,
        in first-encounter order — the exact dict the base class would
        iterate, so journal order and every derived tally match the
        scalar fold bit for bit.  Gains, wanted counts, and the matrix
        scatter are computed vectorized; only the per-destination list
        updates remain Python.
        """
        np = self.np
        matrix = self.matrix  # sync before scattering below
        gained = folded & ~matrix[dsts_arr]
        nonzero = gained.any(axis=1)
        if not nonzero.all():
            keep = np.nonzero(nonzero)[0]
            dsts_arr = dsts_arr[keep]
            gained = gained[keep]
        if dsts_arr.size == 0:
            return
        wanted = gained & self._want_matrix()[dsts_arr]
        wanted_counts = np.bitwise_count(wanted).sum(axis=1, dtype=np.int64)
        gained_ints = matrix_to_masks(gained)
        possession_masks = self.possession_masks
        possession = self.possession
        deficit = self.deficit
        journal = self._journal
        track_dirty = self._arc_useful is not None
        dirty_flags = self._dirty_flags
        dirty = self._dirty
        for dst, g, c in zip(
            dsts_arr.tolist(), gained_ints, wanted_counts.tolist()
        ):
            new_mask = possession_masks[dst] | g
            possession_masks[dst] = new_mask
            possession[dst] = TokenSet(new_mask)
            if c:
                deficit[dst] -= c
            journal.append((dst, g))
            if track_dirty and not dirty_flags[dst]:
                dirty_flags[dst] = 1
                dirty.append(dst)
        self.total_deficit -= int(wanted_counts.sum())
        num_tokens = self.problem.num_tokens
        holder_counts = self.holder_counts
        for t, c in enumerate(popcount_cols(gained)[:num_tokens]):
            if c:
                holder_counts[t] += c
        token_deficit = self._token_deficit
        if token_deficit is not None:
            for t, c in enumerate(popcount_cols(wanted)[:num_tokens]):
                if c:
                    token_deficit[t] -= c
        # The journal entries above are already reflected in the rows
        # scattered here, so the lazy sync can skip them.
        matrix[dsts_arr] |= gained
        self._matrix_version = len(journal)

    def apply_arrivals(self, arrivals: Dict[int, int]) -> None:
        """Batched arrival fold: per-token tallies as column popcounts.

        When ``arrivals`` is the dict the last :meth:`validate_vector`
        call built, the fold's arrays are reused directly
        (:meth:`_apply_fold`) and the dict is never touched.  Otherwise
        the per-destination bookkeeping (possession masks, deficits,
        journal, dirty tracking) stays a Python loop — one big-int op
        per destination, in the exact order the base class applies
        gains — but the per-*bit* loops that update ``holder_counts``
        and the demand vector are replaced by column popcounts over the
        step's gained-token matrix, so their cost is proportional to
        matrix bytes, not gained tokens times Python-loop overhead.
        """
        fold = self._arrival_fold
        if fold is not None and fold[0] is arrivals:
            self._arrival_fold = None
            self._apply_fold(fold[1], fold[2])
            return
        if len(arrivals) < self._VECTOR_ARRIVALS_MIN:
            super().apply_arrivals(arrivals)
            return
        possession_masks = self.possession_masks
        possession = self.possession
        want_masks = self._want_masks
        journal = self._journal
        deficit = self.deficit
        track_dirty = self._arc_useful is not None
        dirty_flags = self._dirty_flags
        dirty = self._dirty
        gained_list: List[int] = []
        wanted_list: List[int] = []
        total_wanted = 0
        for dst, mask in arrivals.items():
            prev = possession_masks[dst]
            gained = mask & ~prev
            if not gained:
                continue
            new_mask = prev | gained
            possession_masks[dst] = new_mask
            possession[dst] = TokenSet(new_mask)
            newly_wanted = gained & want_masks[dst]
            if newly_wanted:
                c = newly_wanted.bit_count()
                deficit[dst] -= c
                total_wanted += c
            journal.append((dst, gained))
            if track_dirty and not dirty_flags[dst]:
                dirty_flags[dst] = 1
                dirty.append(dst)
            gained_list.append(gained)
            wanted_list.append(newly_wanted)
        if not gained_list:
            return
        self.total_deficit -= total_wanted
        num_tokens = self.problem.num_tokens
        holder_counts = self.holder_counts
        gained_cols = popcount_cols(masks_to_matrix(gained_list, num_tokens))
        for t, c in enumerate(gained_cols[:num_tokens]):
            if c:
                holder_counts[t] += c
        token_deficit = self._token_deficit
        if token_deficit is not None and total_wanted:
            wanted_cols = popcount_cols(
                masks_to_matrix(wanted_list, num_tokens)
            )
            for t, c in enumerate(wanted_cols[:num_tokens]):
                if c:
                    token_deficit[t] -= c

    def any_useful_arc(self) -> bool:
        """Vectorized stall test: one comparison over all arcs at once.

        Same answer as the base class's dirty-tracked scan (an arc is
        useful iff its tail holds a token its head lacks); cached per
        state version since possession only changes through the journal.
        """
        version = self.version
        if self._useful_version == version:
            return self._useful_cache
        self._ensure_arc_arrays()
        matrix = self.matrix
        if len(self._arc_keys or []) == 0:
            useful = False
        else:
            np = self.np
            useful = bool(
                np.any(matrix[self._arc_src] & ~matrix[self._arc_dst])
            )
        self._useful_cache = useful
        self._useful_version = version
        return useful

    # ------------------------------------------------------------------
    # Vector proposal validation (the engine fast path)
    # ------------------------------------------------------------------
    def validate_vector(
        self, vec: VectorProposal, heuristic_name: str, step: int
    ) -> Tuple[Timestep, Dict[int, int]]:
        """Batched equivalent of ``Engine._validated_timestep``.

        Checks every send's capacity and sender possession as array ops,
        then materializes the validated :class:`Timestep` and the per-
        vertex arrival masks in one pass over the nonzero sends.  Raises
        :class:`HeuristicViolation` with the same message the scalar
        validator produces for the same offense (capacity violations are
        all reported before possession violations; a well-behaved vector
        heuristic never triggers either).
        """
        np = self.np
        self._ensure_arc_arrays()
        arc_keys = self._arc_keys
        assert arc_keys is not None
        idx = vec.arc_indices
        masks = vec.masks
        multi = masks.ndim == 2
        if multi:
            counts = np.bitwise_count(masks).sum(axis=1, dtype=np.int64)
        else:
            counts = np.bitwise_count(masks).astype(np.int64)
        caps = self._arc_cap[idx]
        over = counts > caps
        if over.any():
            i = int(np.argmax(over))
            src, dst = arc_keys[int(idx[i])]
            raise HeuristicViolation(
                f"step {step}: heuristic {heuristic_name!r} sent "
                f"{int(counts[i])} tokens on arc ({src}, {dst}) of capacity "
                f"{int(caps[i])}"
            )
        if multi:
            bad = masks & ~self.matrix[self._arc_src[idx]]
            bad_rows = bad.any(axis=1)
        else:
            bad = masks & ~self.matrix[self._arc_src[idx], 0]
            bad_rows = bad != 0
        if bad_rows.any():
            i = int(np.argmax(bad_rows))
            src, _dst = arc_keys[int(idx[i])]
            missing = TokenSet(planes_to_mask(bad[i]) if multi else int(bad[i]))
            raise HeuristicViolation(
                f"step {step}: heuristic {heuristic_name!r} sent tokens "
                f"{sorted(missing)} that vertex {src} does not possess"
            )
        arrivals: Dict[int, int] = {}
        if len(idx):
            # Per-destination arrival masks as one grouped OR over the
            # dst-sorted sends, re-emitted in first-encounter order: the
            # stable sort keeps each destination group's earliest send
            # first, so ``order[starts]`` is the proposal position where
            # each destination first appears, and sorting the groups by
            # it reproduces the eager fold's dict insertion order
            # exactly — arrival values *and* order match the scalar
            # validator, so journal replay stays bit- and order-
            # identical between kernels.
            dsts = self._arc_dst[idx]
            order = np.argsort(dsts, kind="stable")
            udst, starts = np.unique(dsts[order], return_index=True)
            grouped = np.bitwise_or.reduceat(masks[order], starts, axis=0)
            encounter = np.argsort(order[starts], kind="stable")
            folded = grouped[encounter]
            arr_masks: List[int] = (
                matrix_to_masks(folded) if multi else folded.tolist()
            )
            arrivals = dict(zip(udst[encounter].tolist(), arr_masks))
            # Keep the fold as arrays: when the engine hands this dict
            # straight to apply_arrivals, the fold path skips the
            # dict/bigint round trip entirely.  The handshake is only
            # sound if nothing can touch the dict in between, so a
            # subclass overriding validate_vector (the seeded-fault
            # hook) stays on the dict-driven path and its mutations
            # remain authoritative.
            if type(self).validate_vector is BatchState.validate_vector:
                self._arrival_fold = (
                    arrivals,
                    udst[encounter],
                    folded if multi else folded[:, None],
                )
        timestep = _LazyVectorTimestep(
            arc_keys, idx, masks, int(counts.sum())
        )
        return timestep, arrivals

    def __repr__(self) -> str:
        return (
            f"<BatchState v{self.version} deficit={self.total_deficit} "
            f"over {self.problem.num_vertices} vertices x {self.planes} plane(s)>"
        )


def resolve_kernel(kernel: KernelChoice) -> KernelFactory:
    """Map an engine's ``kernel=`` argument to a state factory.

    ``None``/``"state"`` select :class:`SimState`; ``"batch"`` selects
    :class:`BatchState` and raises :class:`MissingNumpyError` up front
    when numpy is unavailable (a run that would die on first use should
    die at configuration time instead); ``"auto"`` degrades gracefully
    to :class:`SimState` without numpy.  A callable is returned as-is —
    the hook the seeded-fault tests use to inject instrumented kernels.
    """
    if kernel is None:
        return SimState
    if callable(kernel):
        return kernel
    if kernel == "state":
        return SimState
    if kernel == "batch":
        require_numpy()
        return BatchState
    if kernel == "auto":
        return BatchState if HAVE_NUMPY else SimState
    raise ValueError(
        f"unknown kernel {kernel!r}; choose one of {', '.join(KERNEL_NAMES)}"
    )
