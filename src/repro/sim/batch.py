"""The vectorized batch step kernel: :class:`BatchState`.

:class:`BatchState` is a drop-in subclass of :class:`repro.sim.SimState`
that additionally mirrors possession into a dense ``(vertices, planes)``
uint64 bitplane matrix (layout: :mod:`repro.sim.bitplanes`).  Every list
the base kernel maintains — ``possession``, ``possession_masks``,
``holder_counts``, ``deficit``, the gain journal — is inherited
unchanged, so heuristics and engines that read those see *exactly* the
state a plain ``SimState`` would give them, bit for bit.  On top of
that, the matrix enables batched array ops where per-vertex Python
loops used to run:

* :meth:`in_supply_masks` — the per-vertex union of in-neighbor
  possession (the flooding heuristics' supply scan) as one gather plus
  one ``bitwise_or.reduceat`` over dst-grouped arcs;
* :meth:`any_useful_arc` — the stall test as a single vectorized
  comparison over all arcs;
* :meth:`validate_vector` — batched capacity/possession validation of a
  :class:`VectorProposal` (the engine's fast path for heuristics that
  can propose as arrays, currently Round-Robin).

The matrix is synced *lazily* from the inherited gain journal: a run
that never touches a batched read (e.g. the LOCD runner) pays nothing
beyond the initial pack.  Since the journal already carries every
possession change, replaying it is exact — the matrix row of a vertex
is always the bit image of ``possession_masks[v]`` at sync time.

Equivalence contract: engines built on :class:`BatchState` produce
schedules and JSONL traces byte-identical to :class:`SimState` and the
frozen oracle in :mod:`repro.sim.reference` on every supported
configuration (``tests/sim/test_batch_equivalence.py``).  The batched
reads return the same *values* the scalar loops compute, so heuristics
consume their RNG streams identically; the vector proposal path is
restricted to RNG-free heuristics.

Kernel selection is centralized in :func:`resolve_kernel`: ``"state"``
(the default everywhere), ``"batch"`` (raises
:class:`~repro.sim.bitplanes.MissingNumpyError` without numpy),
``"auto"`` (batch when numpy is importable, else state), or a callable
``Problem -> SimState`` for tests that inject instrumented kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.problem import Problem
from repro.core.schedule import Timestep
from repro.core.tokenset import TokenSet
from repro.sim.bitplanes import (
    HAVE_NUMPY,
    MissingNumpyError,
    masks_to_matrix,
    matrix_to_masks,
    plane_count,
    require_numpy,
)
from repro.sim.engine import HeuristicViolation
from repro.sim.state import SimState

__all__ = [
    "BatchState",
    "VectorProposal",
    "KernelFactory",
    "KernelChoice",
    "KERNEL_NAMES",
    "HAVE_NUMPY",
    "MissingNumpyError",
    "resolve_kernel",
]

_PLANE_MASK = (1 << 64) - 1

#: The engine-facing kernel names, in CLI/docs order.
KERNEL_NAMES = ("state", "batch", "auto")

KernelFactory = Callable[[Problem], SimState]
KernelChoice = Union[str, KernelFactory, None]


@dataclass(frozen=True)
class VectorProposal:
    """One timestep's sends as parallel arrays instead of a dict.

    ``arc_indices`` indexes into ``problem.arcs`` in **increasing
    order** — the same order a scalar heuristic inserts sends into its
    proposal dict — and ``masks`` holds the corresponding single-plane
    send bitmasks (the vector path is limited to token universes that
    fit one uint64 plane).  Rows with empty masks must be omitted,
    mirroring the dict path's validation dropping empty sends.
    """

    arc_indices: Any  # (K,) integer ndarray
    masks: Any  # (K,) uint64 ndarray, all nonzero


class _LazyVectorTimestep(Timestep):
    """A validated :class:`Timestep` that materializes its dict lazily.

    The vector path validates sends wholesale as arrays; building the
    ``{arc: TokenSet}`` dict eagerly would put a Python loop over every
    send back into the hot path just to store the schedule.  Instead the
    index/mask arrays are kept and the dict is built on first ``sends``
    access (trace emission, pruning, equality — all off the hot path),
    in ascending arc order, exactly as the eager validator inserts it.
    ``num_moves`` is precomputed from a popcount so schedule bandwidth
    never forces materialization.
    """

    __slots__ = ("_keys", "_idx", "_masks", "_moves")

    def __init__(
        self, keys: List[Tuple[int, int]], idx: Any, masks: Any, moves: int
    ) -> None:
        # Deliberately skip Timestep.__init__: the base class's
        # ``sends`` slot stays *unset*, so the first attribute access
        # falls through to ``__getattr__`` below, which materializes
        # the dict into the slot.  Later accesses hit the slot direct.
        self._keys = keys
        self._idx = idx
        self._masks = masks
        self._moves = moves

    def __getattr__(self, name: str) -> Any:
        if name == "sends":
            keys = self._keys
            sends = {
                keys[i]: TokenSet(mask)
                for i, mask in zip(self._idx.tolist(), self._masks.tolist())
            }
            self.sends = sends
            return sends
        raise AttributeError(name)

    def num_moves(self) -> int:
        return self._moves


class BatchState(SimState):
    """A :class:`SimState` with a lazily-synced dense bitplane mirror.

    Construction requires numpy (:func:`resolve_kernel` never hands this
    class out otherwise).  All inherited state is maintained by the base
    class exactly as before; the subclass only *adds* reads.
    """

    __slots__ = (
        "np",
        "planes",
        "_matrix",
        "_matrix_version",
        "_arc_src",
        "_arc_dst",
        "_arc_cap",
        "_arc_keys",
        "_in_gather",
        "_in_starts",
        "_in_dsts",
        "_supply_cache",
        "_supply_version",
        "_useful_cache",
        "_useful_version",
    )

    #: Engines probe this (via getattr, to avoid importing numpy-adjacent
    #: modules on the scalar path) before offering heuristics the vector
    #: proposal fast path.
    supports_vector = True

    def __init__(
        self, problem: Problem, possession: Optional[Iterable[TokenSet]] = None
    ) -> None:
        super().__init__(problem, possession)
        self.np = require_numpy()
        self.planes = plane_count(problem.num_tokens)
        self._matrix = masks_to_matrix(self.possession_masks, problem.num_tokens)
        self._matrix_version = self.version
        # Arc index arrays and supply groups are built on first use so
        # drivers that never take a batched read (LOCD) skip them.
        self._arc_src: Any = None
        self._arc_dst: Any = None
        self._arc_cap: Any = None
        self._arc_keys: Optional[List[Tuple[int, int]]] = None
        self._in_gather: Any = None
        self._in_starts: Any = None
        self._in_dsts: Optional[List[int]] = None
        self._supply_cache: Optional[List[int]] = None
        self._supply_version = -1
        self._useful_cache = False
        self._useful_version = -1

    # ------------------------------------------------------------------
    # Matrix mirror
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> Any:
        """The ``(V, P)`` possession matrix, synced to the current state.

        Sync replays the journal entries applied since the last read and
        rewrites just those vertices' rows from ``possession_masks`` —
        the masks are current, and possession only grows, so rewriting a
        row repeatedly is idempotent.  O(gains since last read).
        """
        journal = self._journal
        cursor = self._matrix_version
        if cursor != len(journal):
            matrix = self._matrix
            masks = self.possession_masks
            if self.planes == 1:
                for dst, _gained in journal[cursor:]:
                    matrix[dst, 0] = masks[dst]
            else:
                for dst, _gained in journal[cursor:]:
                    mm = masks[dst]
                    for p in range(self.planes):
                        matrix[dst, p] = mm & _PLANE_MASK
                        mm >>= 64
            self._matrix_version = len(journal)
        return self._matrix

    def _ensure_arc_arrays(self) -> None:
        if self._arc_keys is not None:
            return
        np = self.np
        arcs = self.problem.arcs
        n_arcs = len(arcs)
        self._arc_src = np.fromiter(
            (a.src for a in arcs), dtype=np.int64, count=n_arcs
        )
        self._arc_dst = np.fromiter(
            (a.dst for a in arcs), dtype=np.int64, count=n_arcs
        )
        self._arc_cap = np.fromiter(
            (a.capacity for a in arcs), dtype=np.int64, count=n_arcs
        )
        self._arc_keys = [(a.src, a.dst) for a in arcs]

    @property
    def arc_src(self) -> Any:
        """Per-arc source vertex ids as an int64 array (arc order)."""
        self._ensure_arc_arrays()
        return self._arc_src

    @property
    def arc_dst(self) -> Any:
        """Per-arc destination vertex ids as an int64 array (arc order)."""
        self._ensure_arc_arrays()
        return self._arc_dst

    @property
    def arc_cap(self) -> Any:
        """Per-arc capacities as an int64 array (arc order)."""
        self._ensure_arc_arrays()
        return self._arc_cap

    # ------------------------------------------------------------------
    # Batched reads
    # ------------------------------------------------------------------
    def in_supply_masks(self) -> List[int]:
        """Per-vertex union of in-neighbor possession, as int bitmasks.

        ``out[v]`` equals ``OR(possession_masks[src] for arcs src -> v)``
        — the supply scan every request-subdividing heuristic runs per
        vertex per step — computed for all vertices at once with one
        gather and one grouped-OR reduction.  Cached per state version,
        so repeated reads within a quiescent state are free.
        """
        version = self.version
        cached = self._supply_cache
        if cached is not None and self._supply_version == version:
            return cached
        np = self.np
        matrix = self.matrix
        out = [0] * self.problem.num_vertices
        if self._in_dsts is None:
            self._ensure_arc_arrays()
            if len(self._arc_keys or []) == 0:
                self._in_dsts = []
            else:
                order = np.argsort(self._arc_dst, kind="stable")
                dsts, starts = np.unique(
                    self._arc_dst[order], return_index=True
                )
                self._in_gather = self._arc_src[order]
                self._in_starts = starts
                self._in_dsts = [int(d) for d in dsts]
        if self._in_dsts:
            unions = np.bitwise_or.reduceat(
                matrix[self._in_gather], self._in_starts, axis=0
            )
            for dst, mask in zip(self._in_dsts, matrix_to_masks(unions)):
                out[dst] = mask
        self._supply_cache = out
        self._supply_version = version
        return out

    def any_useful_arc(self) -> bool:
        """Vectorized stall test: one comparison over all arcs at once.

        Same answer as the base class's dirty-tracked scan (an arc is
        useful iff its tail holds a token its head lacks); cached per
        state version since possession only changes through the journal.
        """
        version = self.version
        if self._useful_version == version:
            return self._useful_cache
        self._ensure_arc_arrays()
        matrix = self.matrix
        if len(self._arc_keys or []) == 0:
            useful = False
        else:
            np = self.np
            useful = bool(
                np.any(matrix[self._arc_src] & ~matrix[self._arc_dst])
            )
        self._useful_cache = useful
        self._useful_version = version
        return useful

    # ------------------------------------------------------------------
    # Vector proposal validation (the engine fast path)
    # ------------------------------------------------------------------
    def validate_vector(
        self, vec: VectorProposal, heuristic_name: str, step: int
    ) -> Tuple[Timestep, Dict[int, int]]:
        """Batched equivalent of ``Engine._validated_timestep``.

        Checks every send's capacity and sender possession as array ops,
        then materializes the validated :class:`Timestep` and the per-
        vertex arrival masks in one pass over the nonzero sends.  Raises
        :class:`HeuristicViolation` with the same message the scalar
        validator produces for the same offense (capacity violations are
        all reported before possession violations; a well-behaved vector
        heuristic never triggers either).
        """
        np = self.np
        self._ensure_arc_arrays()
        arc_keys = self._arc_keys
        assert arc_keys is not None
        idx = vec.arc_indices
        masks = vec.masks
        counts = np.bitwise_count(masks).astype(np.int64)
        caps = self._arc_cap[idx]
        over = counts > caps
        if over.any():
            i = int(np.argmax(over))
            src, dst = arc_keys[int(idx[i])]
            raise HeuristicViolation(
                f"step {step}: heuristic {heuristic_name!r} sent "
                f"{int(counts[i])} tokens on arc ({src}, {dst}) of capacity "
                f"{int(caps[i])}"
            )
        owned = self.matrix[self._arc_src[idx], 0]
        bad = masks & ~owned
        nonzero_bad = bad != 0
        if nonzero_bad.any():
            i = int(np.argmax(nonzero_bad))
            src, _dst = arc_keys[int(idx[i])]
            missing = TokenSet(int(bad[i]))
            raise HeuristicViolation(
                f"step {step}: heuristic {heuristic_name!r} sent tokens "
                f"{sorted(missing)} that vertex {src} does not possess"
            )
        arrivals: Dict[int, int] = {}
        if len(idx):
            # Per-destination arrival masks as one grouped OR over the
            # dst-sorted sends.  Arrival *values* are exactly what the
            # eager dict fold computes; dict order differs (ascending
            # dst vs first-encounter), which no consumer observes — the
            # journal fold and trace emission are order-insensitive.
            dsts = self._arc_dst[idx]
            order = np.argsort(dsts, kind="stable")
            udst, starts = np.unique(dsts[order], return_index=True)
            grouped = np.bitwise_or.reduceat(masks[order], starts)
            arrivals = dict(zip(udst.tolist(), grouped.tolist()))
        timestep = _LazyVectorTimestep(
            arc_keys, idx, masks, int(counts.sum())
        )
        return timestep, arrivals

    def __repr__(self) -> str:
        return (
            f"<BatchState v{self.version} deficit={self.total_deficit} "
            f"over {self.problem.num_vertices} vertices x {self.planes} plane(s)>"
        )


def resolve_kernel(kernel: KernelChoice) -> KernelFactory:
    """Map an engine's ``kernel=`` argument to a state factory.

    ``None``/``"state"`` select :class:`SimState`; ``"batch"`` selects
    :class:`BatchState` and raises :class:`MissingNumpyError` up front
    when numpy is unavailable (a run that would die on first use should
    die at configuration time instead); ``"auto"`` degrades gracefully
    to :class:`SimState` without numpy.  A callable is returned as-is —
    the hook the seeded-fault tests use to inject instrumented kernels.
    """
    if kernel is None:
        return SimState
    if callable(kernel):
        return kernel
    if kernel == "state":
        return SimState
    if kernel == "batch":
        require_numpy()
        return BatchState
    if kernel == "auto":
        return BatchState if HAVE_NUMPY else SimState
    raise ValueError(
        f"unknown kernel {kernel!r}; choose one of {', '.join(KERNEL_NAMES)}"
    )
