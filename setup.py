"""Setuptools shim.

All metadata lives in pyproject.toml.  This file exists so that editable
installs keep working on offline machines without the ``wheel`` package,
via the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
